//! Telemetry events and their JSONL encoding.
//!
//! One [`Event`] is one line in the machine-readable trace: span closes,
//! metric flushes, recoveries, health-check verdicts, and free-form
//! info/warn messages all share the same flat shape —
//! `{"t_us":…,"kind":"…","name":"…", …fields}` — so downstream tooling can
//! stream the file line by line without a schema registry.

use std::collections::VecDeque;

/// A field value attached to an event. The variants cover everything the
/// instrumentation records; floats are serialized as JSON `null` when
/// non-finite (JSON has no NaN/∞).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, byte sizes, ids, microseconds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (losses, learning-rate scales, metric values).
    F64(f64),
    /// String (reasons, labels, verdicts).
    Str(String),
    /// Boolean (health verdicts, flags).
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// One telemetry event: a timestamp (µs since the handle was created), a
/// kind (`span`, `counter`, `histogram`, `gauge`, `recovery`, `health`,
/// `info`, `warn`), a name, and free-form fields.
#[derive(Debug, Clone)]
pub struct Event {
    /// Microseconds since the owning [`crate::Telemetry`] was created
    /// (monotonic clock).
    pub t_us: u64,
    /// Event category; consumers dispatch on this.
    pub kind: &'static str,
    /// Event name within the kind (span kind, metric name, …).
    pub name: String,
    /// Additional key/value payload, serialized flat into the JSON object.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 24);
        out.push_str("{\"t_us\":");
        out.push_str(&self.t_us.to_string());
        out.push_str(",\"kind\":\"");
        push_escaped(&mut out, self.kind);
        out.push_str("\",\"name\":\"");
        push_escaped(&mut out, &self.name);
        out.push('"');
        for (k, v) in &self.fields {
            out.push_str(",\"");
            push_escaped(&mut out, k);
            out.push_str("\":");
            push_value(&mut out, v);
        }
        out.push('}');
        out
    }
}

fn push_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest-roundtrip Display for f64 is valid JSON.
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => {
            out.push('"');
            push_escaped(out, s);
            out.push('"');
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Escapes a string for inclusion inside JSON quotes.
fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Fixed-capacity ring buffer holding the most recent events, so the tail
/// of a run is inspectable in-process even without a JSONL sink.
#[derive(Debug)]
pub struct EventRing {
    buf: VecDeque<Event>,
    capacity: usize,
    /// Events pushed since creation (including ones the ring has dropped).
    pub total: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self { buf: VecDeque::with_capacity(capacity.min(1024)), capacity: capacity.max(1), total: 0 }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, ev: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(ev);
        self.total += 1;
    }

    /// The buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.buf.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_serializes_flat_json() {
        let ev = Event {
            t_us: 42,
            kind: "span",
            name: "epoch".into(),
            fields: vec![
                ("id", Value::U64(3)),
                ("dur_us", Value::U64(1500)),
                ("loss", Value::F64(0.25)),
                ("ok", Value::Bool(true)),
                ("why", Value::Str("it \"works\"\n".into())),
            ],
        };
        let j = ev.to_json();
        assert_eq!(
            j,
            "{\"t_us\":42,\"kind\":\"span\",\"name\":\"epoch\",\"id\":3,\
             \"dur_us\":1500,\"loss\":0.25,\"ok\":true,\"why\":\"it \\\"works\\\"\\n\"}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let ev = Event {
            t_us: 0,
            kind: "gauge",
            name: "x".into(),
            fields: vec![("v", Value::F64(f64::NAN)), ("w", Value::F64(f64::INFINITY))],
        };
        let j = ev.to_json();
        assert!(j.contains("\"v\":null") && j.contains("\"w\":null"), "{j}");
    }

    #[test]
    fn control_chars_are_escaped() {
        let ev = Event {
            t_us: 0,
            kind: "info",
            name: "m".into(),
            fields: vec![("msg", Value::Str("a\u{1}b\tc".into()))],
        };
        assert!(ev.to_json().contains("a\\u0001b\\tc"));
    }

    #[test]
    fn ring_evicts_oldest_and_counts_total() {
        let mut ring = EventRing::new(3);
        for i in 0..5u64 {
            ring.push(Event { t_us: i, kind: "info", name: i.to_string(), fields: vec![] });
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].t_us, 2);
        assert_eq!(snap[2].t_us, 4);
        assert_eq!(ring.total, 5);
    }
}
