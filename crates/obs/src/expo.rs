//! Prometheus-style text exposition: `name{label="value"} value` lines
//! rendered from metric snapshots, so a scrape of the serving layer (or
//! any process holding a [`crate::Telemetry`]) needs no client library.
//!
//! The format follows the Prometheus text conventions close enough for
//! standard scrapers and for `grep`:
//!
//! ```text
//! # TYPE logirec_serve_requests_total counter
//! logirec_serve_requests_total 42
//! # TYPE logirec_serve_exact_latency_us summary
//! logirec_serve_exact_latency_us{quantile="0.5"} 184
//! logirec_serve_exact_latency_us{quantile="0.95"} 1536
//! logirec_serve_exact_latency_us{quantile="0.99"} 1536
//! logirec_serve_exact_latency_us_sum 2210
//! logirec_serve_exact_latency_us_count 12
//! ```
//!
//! Names are sanitized to `[a-zA-Z0-9_:]` (dots in registry names become
//! underscores) and each metric family is emitted at most once — the first
//! writer wins, so callers can layer authoritative sources (e.g. the serve
//! `Stats` counters) over a telemetry registry that mirrors some of them.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// The quantiles every histogram family exposes.
pub const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

/// An in-progress exposition document. Build with the typed appenders,
/// then [`Exposition::render`].
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
    emitted: Vec<String>,
}

/// Sanitizes a metric name: every byte outside `[a-zA-Z0-9_:]` becomes
/// `_`, and a leading digit is prefixed with `_`.
pub fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 1);
    for (i, c) in raw.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Formats a value the way Prometheus expects: integers without a
/// fraction, floats with shortest round-trip formatting, non-finite as
/// `NaN`/`+Inf`/`-Inf`.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf".to_string() } else { "-Inf".to_string() }
    } else if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Exposition {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when a family with this (sanitized) name was already emitted;
    /// records it otherwise. First writer wins.
    fn claim(&mut self, family: &str) -> bool {
        if self.emitted.iter().any(|e| e == family) {
            return false;
        }
        self.emitted.push(family.to_string());
        true
    }

    /// Appends a counter family. `_total` is appended to the name unless
    /// already present (Prometheus counter convention).
    pub fn counter(&mut self, name: &str, v: u64) {
        let mut family = metric_name(name);
        if !family.ends_with("_total") {
            family.push_str("_total");
        }
        if !self.claim(&family) {
            return;
        }
        self.out.push_str(&format!("# TYPE {family} counter\n{family} {v}\n"));
    }

    /// Appends a gauge family.
    pub fn gauge(&mut self, name: &str, v: f64) {
        let family = metric_name(name);
        if !self.claim(&family) {
            return;
        }
        self.out.push_str(&format!("# TYPE {family} gauge\n{family} {}\n", fmt_value(v)));
    }

    /// Appends a histogram as a summary family: one `{quantile="…"}` line
    /// per entry of [`QUANTILES`], plus `_sum`, `_count`, and `_max`.
    pub fn summary(&mut self, name: &str, h: &HistogramSnapshot) {
        let family = metric_name(name);
        if !self.claim(&family) {
            return;
        }
        self.out.push_str(&format!("# TYPE {family} summary\n"));
        for (q, label) in QUANTILES {
            self.out.push_str(&format!(
                "{family}{{quantile=\"{label}\"}} {}\n",
                h.quantile(q)
            ));
        }
        self.out.push_str(&format!("{family}_sum {}\n", h.sum));
        self.out.push_str(&format!("{family}_count {}\n", h.count));
        self.out.push_str(&format!("{family}_max {}\n", h.max));
    }

    /// Appends every metric of a registry snapshot, each name prefixed
    /// with `prefix` (pass `"logirec_"` for the standard namespace).
    /// Families already emitted are skipped, so authoritative sources
    /// appended earlier win over registry mirrors of the same series.
    pub fn snapshot(&mut self, prefix: &str, snap: &MetricsSnapshot) {
        for (name, v) in &snap.counters {
            self.counter(&format!("{prefix}{name}"), *v);
        }
        for (name, v) in &snap.gauges {
            self.gauge(&format!("{prefix}{name}"), *v);
        }
        for (name, h) in &snap.histograms {
            self.summary(&format!("{prefix}{name}"), h);
        }
    }

    /// The finished exposition text.
    pub fn render(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values: &[u64]) -> HistogramSnapshot {
        let h = crate::Histogram::standalone();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn sanitizes_names() {
        assert_eq!(metric_name("serve.exact_us"), "serve_exact_us");
        assert_eq!(metric_name("9lives"), "_9lives");
        assert_eq!(metric_name("a-b c"), "a_b_c");
    }

    #[test]
    fn counter_gets_total_suffix_once() {
        let mut e = Exposition::new();
        e.counter("serve.requests", 3);
        e.counter("serve.bytes_total", 7);
        let s = e.render();
        assert!(s.contains("# TYPE serve_requests_total counter\nserve_requests_total 3\n"));
        assert!(s.contains("serve_bytes_total 7\n"));
        assert!(!s.contains("total_total"), "{s}");
    }

    #[test]
    fn summary_emits_quantiles_sum_count() {
        let snap = hist(&[1, 1, 2, 100, 1000]);
        let mut e = Exposition::new();
        e.summary("lat.us", &snap);
        let s = e.render();
        assert!(s.contains("# TYPE lat_us summary"));
        assert!(s.contains(&format!("lat_us{{quantile=\"0.5\"}} {}", snap.quantile(0.5))));
        assert!(s.contains(&format!("lat_us{{quantile=\"0.95\"}} {}", snap.quantile(0.95))));
        assert!(s.contains(&format!("lat_us{{quantile=\"0.99\"}} {}", snap.quantile(0.99))));
        assert!(s.contains("lat_us_sum 1104"));
        assert!(s.contains("lat_us_count 5"));
        assert!(s.contains("lat_us_max 1000"));
    }

    #[test]
    fn first_writer_wins_on_duplicate_families() {
        let mut e = Exposition::new();
        e.counter("serve.requests", 10);
        e.counter("serve.requests", 99); // registry mirror; dropped
        e.gauge("x", 1.0);
        e.gauge("x", 2.0);
        let s = e.render();
        assert!(s.contains("serve_requests_total 10"));
        assert!(!s.contains("99"), "{s}");
        assert_eq!(s.matches("# TYPE x gauge").count(), 1);
    }

    #[test]
    fn snapshot_prefixes_and_values_render() {
        let snap = MetricsSnapshot {
            counters: vec![("trainer.steps", 42)],
            gauges: vec![("trainer.lr", 0.125)],
            histograms: vec![("batch_us", hist(&[5, 7]))],
        };
        let mut e = Exposition::new();
        e.snapshot("logirec_", &snap);
        let s = e.render();
        assert!(s.contains("logirec_trainer_steps_total 42"));
        assert!(s.contains("logirec_trainer_lr 0.125"));
        assert!(s.contains("logirec_batch_us_count 2"));
    }

    #[test]
    fn gauge_values_format_cleanly() {
        let mut e = Exposition::new();
        e.gauge("a", 3.0);
        e.gauge("b", f64::NAN);
        e.gauge("c", f64::INFINITY);
        let s = e.render();
        assert!(s.contains("a 3\n"), "{s}");
        assert!(s.contains("b NaN\n"));
        assert!(s.contains("c +Inf\n"));
    }
}
