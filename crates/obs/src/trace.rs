//! Structural validation of emitted JSONL traces.
//!
//! Shared by the `trace_check` CLI binary and the integration tests: every
//! line must parse as a flat event object, and the span events must form a
//! well-nested forest (unique ids, parents opened before children, child
//! intervals contained in their parent's interval).

use std::collections::BTreeMap;

use crate::json::{self, Json};

/// Aggregate facts about a validated trace.
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    /// Total non-empty lines (== total events).
    pub lines: usize,
    /// Events with `kind == "span"`.
    pub spans: usize,
    /// Span count per span name (`epoch`, `batch`, …).
    pub span_kinds: BTreeMap<String, usize>,
    /// Event count per kind (`span`, `counter`, `recovery`, …).
    pub event_kinds: BTreeMap<String, usize>,
}

impl TraceStats {
    /// Number of spans with the given name.
    pub fn span_count(&self, name: &str) -> usize {
        self.span_kinds.get(name).copied().unwrap_or(0)
    }
}

struct SpanRec {
    start_us: u64,
    end_us: u64,
    parent: Option<u64>,
    /// 1-based line the span event came from (for diagnostics).
    line: usize,
    name: String,
}

/// Nesting depth of a span (roots are depth 0), walking the parent chain
/// through the completed map. Cycles cannot occur (parent < child ids are
/// enforced at parse time), so the walk terminates.
fn depth_of(spans: &BTreeMap<u64, SpanRec>, mut id: u64) -> usize {
    let mut depth = 0;
    while let Some(p) = spans.get(&id).and_then(|r| r.parent) {
        depth += 1;
        id = p;
    }
    depth
}

/// Validates a whole trace (one JSON object per line). Returns statistics
/// on success; the first structural violation aborts with a message naming
/// the offending line.
pub fn validate_trace(content: &str) -> Result<TraceStats, String> {
    let mut stats = TraceStats::default();
    let mut spans: BTreeMap<u64, SpanRec> = BTreeMap::new();
    for (ln, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = json::parse(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
        let kind = ev
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing string \"kind\"", ln + 1))?
            .to_string();
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing string \"name\"", ln + 1))?
            .to_string();
        let t_us = ev
            .get("t_us")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {}: missing integer \"t_us\"", ln + 1))?;
        stats.lines += 1;
        *stats.event_kinds.entry(kind.clone()).or_insert(0) += 1;

        if kind == "span" {
            let id = ev
                .get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {}: span without integer \"id\"", ln + 1))?;
            let dur = ev
                .get("dur_us")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {}: span without \"dur_us\"", ln + 1))?;
            let start = ev
                .get("start_us")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {}: span without \"start_us\"", ln + 1))?;
            let parent = match ev.get("parent") {
                None | Some(Json::Null) => None,
                Some(p) => Some(p.as_u64().ok_or_else(|| {
                    format!("line {}: span \"parent\" is not an integer", ln + 1)
                })?),
            };
            if start + dur > t_us + 1 {
                return Err(format!(
                    "line {}: span {id} ({name:?}) closes at {t_us}µs before start \
                     {start}µs + dur {dur}µs",
                    ln + 1
                ));
            }
            if let Some(p) = parent {
                if p >= id {
                    return Err(format!(
                        "line {}: span {id} ({name:?}) has parent {p} opened after it (ids \
                         are allocated at open, so parent < child must hold)",
                        ln + 1
                    ));
                }
            }
            let rec = SpanRec {
                start_us: start,
                end_us: t_us,
                parent,
                line: ln + 1,
                name: name.clone(),
            };
            if let Some(prev) = spans.insert(id, rec) {
                return Err(format!(
                    "line {}: duplicate span id {id} ({name:?}; first used by {:?} on line {})",
                    ln + 1,
                    prev.name,
                    prev.line
                ));
            }
            stats.spans += 1;
            *stats.span_kinds.entry(name).or_insert(0) += 1;
        }
    }

    // Containment: spans close child-first, so every parent must exist in
    // the completed map and the child interval must sit inside it.
    for (&id, rec) in &spans {
        if let Some(p) = rec.parent {
            let parent = spans.get(&p).ok_or_else(|| {
                format!(
                    "line {}: span {id} ({:?}) references missing parent {p} \
                     (parent never closed, or the trace was truncated)",
                    rec.line, rec.name
                )
            })?;
            if rec.start_us < parent.start_us || rec.end_us > parent.end_us {
                return Err(format!(
                    "line {}: span {id} ({:?}, depth {}) [{}, {}]µs escapes parent \
                     {p} ({:?}, line {}) [{}, {}]µs",
                    rec.line,
                    rec.name,
                    depth_of(&spans, id),
                    rec.start_us,
                    rec.end_us,
                    parent.name,
                    parent.line,
                    parent.start_us,
                    parent.end_us
                ));
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_nested_spans() {
        let trace = "\
{\"t_us\":5,\"kind\":\"span\",\"name\":\"batch\",\"id\":2,\"parent\":1,\"start_us\":2,\"dur_us\":3}
{\"t_us\":9,\"kind\":\"span\",\"name\":\"epoch\",\"id\":1,\"parent\":null,\"start_us\":1,\"dur_us\":8}
{\"t_us\":10,\"kind\":\"counter\",\"name\":\"steps\",\"value\":4}
";
        let stats = validate_trace(trace).expect("valid");
        assert_eq!(stats.lines, 3);
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.span_count("epoch"), 1);
        assert_eq!(stats.span_count("batch"), 1);
        assert_eq!(stats.event_kinds["counter"], 1);
    }

    #[test]
    fn rejects_child_escaping_parent() {
        let trace = "\
{\"t_us\":9,\"kind\":\"span\",\"name\":\"batch\",\"id\":2,\"parent\":1,\"start_us\":2,\"dur_us\":7}
{\"t_us\":8,\"kind\":\"span\",\"name\":\"epoch\",\"id\":1,\"start_us\":1,\"dur_us\":7}
";
        let err = validate_trace(trace).expect_err("must reject");
        assert!(err.contains("escapes parent"), "{err}");
    }

    #[test]
    fn rejects_parse_failures_and_missing_fields() {
        assert!(validate_trace("not json\n").is_err());
        assert!(validate_trace("{\"kind\":\"span\",\"name\":\"x\"}\n").is_err());
        let no_id = "{\"t_us\":1,\"kind\":\"span\",\"name\":\"x\",\"start_us\":0,\"dur_us\":1}\n";
        assert!(validate_trace(no_id).unwrap_err().contains("id"));
    }

    #[test]
    fn violation_messages_carry_line_name_and_depth() {
        // grandchild(3) under child(2) under root(1); the grandchild
        // escapes its parent's interval.
        let trace = "\
{\"t_us\":9,\"kind\":\"span\",\"name\":\"loss\",\"id\":3,\"parent\":2,\"start_us\":3,\"dur_us\":6}
{\"t_us\":8,\"kind\":\"span\",\"name\":\"batch\",\"id\":2,\"parent\":1,\"start_us\":2,\"dur_us\":6}
{\"t_us\":10,\"kind\":\"span\",\"name\":\"epoch\",\"id\":1,\"start_us\":1,\"dur_us\":9}
";
        let err = validate_trace(trace).expect_err("must reject");
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("\"loss\""), "{err}");
        assert!(err.contains("depth 2"), "{err}");
        assert!(err.contains("\"batch\""), "offending parent named: {err}");
    }

    #[test]
    fn missing_parent_message_names_the_orphan_line() {
        let orphan =
            "{\"t_us\":5,\"kind\":\"span\",\"name\":\"b\",\"id\":2,\"parent\":1,\"start_us\":2,\"dur_us\":3}\n";
        let err = validate_trace(orphan).unwrap_err();
        assert!(err.contains("line 1") && err.contains("\"b\""), "{err}");
    }

    #[test]
    fn duplicate_id_message_points_at_both_lines() {
        let dup = "\
{\"t_us\":5,\"kind\":\"span\",\"name\":\"first\",\"id\":1,\"start_us\":2,\"dur_us\":3}
{\"t_us\":6,\"kind\":\"span\",\"name\":\"second\",\"id\":1,\"start_us\":2,\"dur_us\":3}
";
        let err = validate_trace(dup).unwrap_err();
        assert!(err.contains("line 2") && err.contains("line 1"), "{err}");
        assert!(err.contains("\"first\"") && err.contains("\"second\""), "{err}");
    }

    #[test]
    fn rejects_missing_parent_and_duplicate_ids() {
        let orphan =
            "{\"t_us\":5,\"kind\":\"span\",\"name\":\"b\",\"id\":2,\"parent\":1,\"start_us\":2,\"dur_us\":3}\n";
        assert!(validate_trace(orphan).unwrap_err().contains("missing parent"));
        let dup = "\
{\"t_us\":5,\"kind\":\"span\",\"name\":\"b\",\"id\":1,\"start_us\":2,\"dur_us\":3}
{\"t_us\":6,\"kind\":\"span\",\"name\":\"b\",\"id\":1,\"start_us\":2,\"dur_us\":3}
";
        assert!(validate_trace(dup).unwrap_err().contains("duplicate span id"));
    }
}
