//! Property and edge-case coverage for histogram quantile estimation: the
//! numbers surfaced in the summary table, `{"stats":true}`, and the metrics
//! exposition must be trustworthy at the boundaries (empty, all-zero,
//! saturating) and ordered (p50 ≤ p95 ≤ p99) for arbitrary fills.

use logirec_obs::metrics::{bucket_index, bucket_lower, N_BUCKETS};
use logirec_obs::Histogram;
use proptest::prelude::*;

fn filled(values: &[u64]) -> logirec_obs::HistogramSnapshot {
    let h = Histogram::standalone();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

#[test]
fn empty_histogram_quantiles_are_zero() {
    let s = Histogram::standalone().snapshot();
    for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(s.quantile(q), 0, "q={q}");
    }
    let (p50, p95, p99) = s.percentiles();
    assert_eq!((p50, p95, p99), (0, 0, 0));
}

#[test]
fn zero_bucket_samples_report_zero() {
    // All samples land in bucket 0 (the exact-zero bucket): every quantile
    // is exactly 0, not a midpoint estimate.
    let s = filled(&[0, 0, 0, 0]);
    assert_eq!(s.count, 4);
    assert_eq!(s.percentiles(), (0, 0, 0));
    assert_eq!(s.max, 0);
}

#[test]
fn single_bucket_fill_stays_inside_the_bucket() {
    // 100 samples of the same value: every quantile must be the bucket's
    // midpoint capped at the observed max — and inside [2^(i-1), 2^i).
    let v = 700u64; // bucket [512, 1024)
    let s = filled(&vec![v; 100]);
    let i = bucket_index(v);
    let lo = bucket_lower(i);
    let hi = lo << 1;
    for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
        let est = s.quantile(q);
        assert!(est >= lo && est < hi, "q={q} est={est} outside [{lo},{hi})");
        assert!(est <= s.max);
    }
}

#[test]
fn saturating_u64_samples_stay_finite_and_capped() {
    // u64::MAX lands in the last bucket; the midpoint computation must not
    // overflow and the estimate must cap at the observed max.
    let s = filled(&[u64::MAX, u64::MAX, 1]);
    assert_eq!(s.buckets.len(), N_BUCKETS);
    assert_eq!(s.buckets[N_BUCKETS - 1], 2);
    let p99 = s.quantile(0.99);
    let top_lo = bucket_lower(N_BUCKETS - 1);
    assert!(p99 >= top_lo, "no overflow wrap: {p99}");
    assert_eq!(s.max, u64::MAX);
    // Sum wrapped (2·MAX + 1 overflows) — quantiles must not depend on it.
    assert!(s.quantile(0.5) >= 1);
}

#[test]
fn quantile_is_monotone_in_q() {
    let s = filled(&[0, 1, 3, 9, 100, 5_000, 70_000, u64::MAX]);
    let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
    for w in qs.windows(2) {
        assert!(
            s.quantile(w[0]) <= s.quantile(w[1]),
            "quantile not monotone between {} and {}",
            w[0],
            w[1]
        );
    }
}

proptest! {
    #[test]
    fn percentiles_are_ordered_under_random_fills(
        values in prop::collection::vec(0u64..2_000_000, 1..200)
    ) {
        let s = filled(&values);
        let (p50, p95, p99) = s.percentiles();
        prop_assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
        prop_assert!(p95 <= p99, "p95 {p95} > p99 {p99}");
        prop_assert!(p99 <= s.max, "p99 {p99} above max {}", s.max);
        prop_assert!(s.quantile(1.0) <= s.max);
    }

    #[test]
    fn estimate_is_within_2x_of_a_true_quantile(
        values in prop::collection::vec(1u64..1_000_000, 1..100)
    ) {
        // The log₂-bucket estimate is exact about which bucket holds the
        // q-th sample: the estimate and the true order statistic share a
        // bucket, so they differ by at most 2× (modulo the max cap).
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let s = filled(&values);
        for q in [0.5, 0.95, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
            let truth = sorted[rank];
            let est = s.quantile(q).max(1);
            prop_assert!(
                est >= truth / 2 && est <= truth.saturating_mul(2),
                "q={q} est={est} truth={truth}"
            );
        }
    }
}
