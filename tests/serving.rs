//! Fault-tolerant serving acceptance tests: exact-path parity with the
//! offline evaluator over the wire, deadline- and overload-driven
//! degradation (never an error), hot-swap reload with rollback on torn
//! files, and injected serve-path faults (scoring stalls, dropped
//! connections) survived by the bounded-retry client.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use logirec_suite::core::io::save_model;
use logirec_suite::core::{train, LogiRec, LogiRecConfig, Precision};
use logirec_suite::data::interactions::Dataset;
use logirec_suite::data::{DatasetSpec, Scale, Split};
use logirec_suite::eval::ranking::top_k_indices;
use logirec_suite::serve::faults::{truncate_file, ServeFaultPlan};
use logirec_suite::serve::{
    recommend_with_retry, Client, IndexConfig, ModelSnapshot, Request, RetryPolicy, ServeContext,
    ServedBy, Server, ServerConfig, WatchConfig,
};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("logirec-serving-{name}-{}", std::process::id()))
}

fn dataset() -> Dataset {
    DatasetSpec::ciao(Scale::Tiny).generate(41)
}

fn trained_model(ds: &Dataset) -> LogiRec {
    let cfg = LogiRecConfig { epochs: 2, ..LogiRecConfig::test_config() };
    train(cfg, ds).0
}

fn start_server(cfg: ServerConfig, ds: &Dataset, model: LogiRec) -> (Server, Arc<ServeContext>) {
    let ctx = Arc::new(ServeContext::from_dataset(ds));
    let snap = ModelSnapshot::build(model, Precision::F64, &ctx, "test").expect("valid snapshot");
    let server = Server::start(cfg, Arc::clone(&ctx), snap).expect("server starts");
    (server, ctx)
}

fn request(user: usize, k: usize, deadline_ms: Option<u64>) -> Request {
    Request { id: user as u64, user, k, deadline_ms }
}

/// The headline parity guarantee: an exact-path response received over the
/// wire is bit-identical to replaying the offline evaluator's scoring —
/// same scores, same Train ∪ Validation mask, same deterministic top-K
/// selection — for every user.
#[test]
fn exact_wire_responses_are_bit_identical_to_offline_evaluation() {
    let ds = dataset();
    let model = trained_model(&ds);
    let reference = model.clone();
    let (server, ctx) = start_server(ServerConfig::default(), &ds, model);
    let snap =
        ModelSnapshot::build(reference, Precision::F64, &ctx, "offline").expect("valid snapshot");

    let mut client = Client::connect(server.addr()).expect("connect");
    for u in 0..ds.n_users() {
        let resp = client
            .recommend(&request(u, 10, Some(10_000)))
            .unwrap_or_else(|e| panic!("user {u}: {e}"));
        assert_eq!(resp.served_by, ServedBy::Exact, "user {u} must be exact");
        assert_eq!(resp.model_version, 1);
        assert_eq!(resp.id, u as u64, "correlation id must echo back");

        // Replay the offline evaluator's masking by hand, off the wire.
        let mut scores = vec![0.0f64; ds.n_items()];
        snap.score_user(u, &mut scores);
        for &v in ds.train.items_of(u) {
            scores[v] = f64::NEG_INFINITY;
        }
        for &v in ds.split(Split::Validation).items_of(u) {
            scores[v] = f64::NEG_INFINITY;
        }
        assert_eq!(resp.items, top_k_indices(&scores, 10), "user {u} item set differs");
        for (&v, &s) in resp.items.iter().zip(&resp.scores) {
            assert_eq!(
                s.to_bits(),
                scores[v].to_bits(),
                "user {u} item {v}: wire score {s} not bit-exact"
            );
        }
    }
    drop(client);
    server.shutdown();
}

/// A zero deadline deterministically degrades every request to the
/// popularity fallback: valid non-empty responses, never an error, never a
/// seen item, and the counters record every degradation.
#[test]
fn starved_deadlines_degrade_to_fallback_and_never_error() {
    let ds = dataset();
    let model = trained_model(&ds);
    let (server, _ctx) = start_server(ServerConfig::default(), &ds, model);

    let mut client = Client::connect(server.addr()).expect("connect");
    for u in 0..ds.n_users() {
        let resp = client
            .recommend(&request(u, 10, Some(0)))
            .unwrap_or_else(|e| panic!("user {u} must not error: {e}"));
        assert_eq!(resp.served_by, ServedBy::Fallback, "user {u}");
        assert_eq!(resp.reason.as_deref(), Some("deadline"), "user {u}");
        assert!(!resp.items.is_empty(), "fallback must still recommend");
        for &v in &resp.items {
            assert!(
                !ds.train.items_of(u).contains(&v),
                "user {u}: fallback recommended seen item {v}"
            );
        }
        for w in resp.scores.windows(2) {
            assert!(w[0] >= w[1], "fallback scores must be popularity-ordered");
        }
    }
    drop(client);

    let stats = server.stats();
    assert_eq!(stats.requests, ds.n_users() as u64);
    assert_eq!(stats.fallback, ds.n_users() as u64);
    assert_eq!(stats.exact, 0);
    assert_eq!(stats.errors, 0);
    server.shutdown();
}

/// The two overload rungs, pinned deterministically by configuration: a
/// soft limit of 0 degrades every request to fallback("overload"); a hard
/// limit of 0 sheds every request (empty items, still a valid reply).
#[test]
fn overload_limits_degrade_then_shed_without_errors() {
    let ds = dataset();

    let soft_cfg = ServerConfig { max_inflight: 0, ..ServerConfig::default() };
    let (server, _ctx) = start_server(soft_cfg, &ds, trained_model(&ds));
    let mut client = Client::connect(server.addr()).expect("connect");
    let resp = client.recommend(&request(1, 10, Some(10_000))).expect("no error");
    assert_eq!(resp.served_by, ServedBy::Fallback);
    assert_eq!(resp.reason.as_deref(), Some("overload"));
    assert!(!resp.items.is_empty());
    drop(client);
    server.shutdown();

    let hard_cfg = ServerConfig { max_inflight: 0, shed_limit: 0, ..ServerConfig::default() };
    let (server, _ctx) = start_server(hard_cfg, &ds, trained_model(&ds));
    let mut client = Client::connect(server.addr()).expect("connect");
    let resp = client.recommend(&request(1, 10, Some(10_000))).expect("no error");
    assert_eq!(resp.served_by, ServedBy::Shed);
    assert_eq!(resp.reason.as_deref(), Some("overload"));
    assert!(resp.items.is_empty(), "a shed response carries no items");
    drop(client);
    let stats = server.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.errors, 0);
    server.shutdown();
}

/// Hot-swap happy path and the rollback guarantee: a valid new model file
/// swaps in (responses report the new version), then a torn rewrite of the
/// same file is rejected — the reload-rejection counter records it and the
/// server keeps serving the last-good snapshot, still on the exact path.
#[test]
fn torn_model_file_is_rejected_and_last_good_keeps_serving() {
    let ds = dataset();
    let path = tmp("hotswap.logirec");
    let _ = std::fs::remove_file(&path);

    let cfg = ServerConfig {
        // Poll far beyond the test duration: reloads happen only when the
        // test forces them, keeping every outcome deterministic.
        watch: Some(WatchConfig { path: path.clone(), poll: Duration::from_secs(3600) }),
        ..ServerConfig::default()
    };
    let (server, _ctx) = start_server(cfg, &ds, trained_model(&ds));
    let mut client = Client::connect(server.addr()).expect("connect");

    // No file yet: nothing to reload.
    let j = client.reload().expect("reload round-trips");
    assert_eq!(j.get("reload").and_then(|v| v.as_str()), Some("unchanged"));

    // A valid model appears: the forced reload validates and swaps it in.
    let next = LogiRec::new(LogiRecConfig { seed: 99, ..LogiRecConfig::test_config() }, &ds);
    save_model(&next, &path).expect("save model");
    let j = client.reload().expect("reload round-trips");
    assert_eq!(j.get("reload").and_then(|v| v.as_str()), Some("swapped"));
    let resp = client.recommend(&request(0, 5, Some(10_000))).expect("serves");
    assert_eq!(resp.model_version, 2, "responses must report the swapped snapshot");

    // The next write is torn mid-flight: validation must reject it and the
    // server must keep serving version 2.
    save_model(&next, &path).expect("rewrite model");
    truncate_file(&path, 0.5).expect("tear file");
    let j = client.reload().expect("reload round-trips");
    assert_eq!(j.get("reload").and_then(|v| v.as_str()), Some("rejected"));

    let resp = client.recommend(&request(0, 5, Some(10_000))).expect("still serves");
    assert_eq!(resp.served_by, ServedBy::Exact, "rollback must not degrade service");
    assert_eq!(resp.model_version, 2, "torn file must never go live");

    let stats = server.stats();
    assert_eq!(stats.reload_success, 1);
    assert_eq!(stats.reload_rejected, 1);
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// An injected scoring stall pushes an exact computation past its deadline:
/// the request demotes to fallback (the late exact answer is discarded),
/// and the next request — stall budget exhausted — is exact again.
#[test]
fn scoring_stall_past_deadline_demotes_to_fallback() {
    let ds = dataset();
    let faults = ServeFaultPlan::new();
    let cfg = ServerConfig { faults: Some(faults.clone()), ..ServerConfig::default() };
    let (server, _ctx) = start_server(cfg, &ds, trained_model(&ds));
    let mut client = Client::connect(server.addr()).expect("connect");

    faults.stall_scoring(Duration::from_millis(120), 1);
    let resp = client.recommend(&request(2, 10, Some(40))).expect("must not error");
    assert_eq!(faults.pending_stalls(), 0, "the stall must have fired");
    assert_eq!(resp.served_by, ServedBy::Fallback, "late exact must demote");
    assert_eq!(resp.reason.as_deref(), Some("deadline"));
    assert!(!resp.items.is_empty());

    let resp = client.recommend(&request(2, 10, Some(10_000))).expect("must not error");
    assert_eq!(resp.served_by, ServedBy::Exact, "service recovers once the stall passes");
    drop(client);
    server.shutdown();
}

/// Injected connection drops are invisible to a client with bounded
/// retries: the first attempts are eaten by the fault, a later one lands,
/// and the drop counter records exactly the scheduled failures.
#[test]
fn dropped_connections_are_survived_by_the_retry_client() {
    let ds = dataset();
    let faults = ServeFaultPlan::new();
    let cfg = ServerConfig { faults: Some(faults.clone()), ..ServerConfig::default() };
    let (server, _ctx) = start_server(cfg, &ds, trained_model(&ds));
    let addr: SocketAddr = server.addr();

    faults.drop_connections(2);
    let policy = RetryPolicy {
        attempts: 4,
        base_backoff: Duration::from_millis(2),
        ..RetryPolicy::default()
    };
    let (resp, attempts) =
        recommend_with_retry(addr, &request(3, 10, Some(10_000)), &policy).expect("retries win");
    assert_eq!(attempts, 3, "two drops then success");
    assert_eq!(resp.served_by, ServedBy::Exact);
    assert_eq!(faults.pending_connection_drops(), 0);
    assert_eq!(server.stats().conn_drops, 2);

    // With the budget exhausted, a single attempt suffices again.
    let one_shot = RetryPolicy { attempts: 1, ..policy };
    let (_, attempts) =
        recommend_with_retry(addr, &request(3, 10, Some(10_000)), &one_shot).expect("clean path");
    assert_eq!(attempts, 1);
    server.shutdown();
}

/// Malformed lines get an error reply but the connection — and the server —
/// keep working. An unknown user (a signup not yet folded in) is *not* an
/// error: it degrades to the unpersonalized popularity fallback, so the
/// client always has something to show while a fold-in catches up.
#[test]
fn client_errors_leave_the_connection_and_server_healthy() {
    let ds = dataset();
    let (server, ctx) = start_server(ServerConfig::default(), &ds, trained_model(&ds));
    let mut client = Client::connect(server.addr()).expect("connect");

    let resp = client
        .recommend(&request(ctx.n_users() + 5, 10, Some(10_000)))
        .expect("unknown user must degrade, not error");
    assert_eq!(resp.served_by, ServedBy::Fallback);
    assert_eq!(resp.reason.as_deref(), Some("unknown_user"));
    assert!(!resp.items.is_empty(), "the popularity prior still answers");
    for w in resp.scores.windows(2) {
        assert!(w[0] >= w[1], "unknown-user fallback is popularity-ordered");
    }

    let line = client.roundtrip_line("this is not json").expect("connection stays open");
    assert!(line.contains("error"), "{line}");

    // Same connection, valid request: still served.
    let resp = client.recommend(&request(0, 5, Some(10_000))).expect("still serves");
    assert_eq!(resp.served_by, ServedBy::Exact);
    let stats = server.stats();
    assert_eq!(stats.errors, 1, "only the malformed line is an error");
    assert_eq!(stats.fallback, 1, "the unknown user degraded instead");
    drop(client);
    server.shutdown();
}

/// The streaming cold-start loop over the wire: an unknown signup degrades
/// to fallback, a rejected fold-in (divergent row) keeps the last-good
/// snapshot, and a successful `{"fold_in":..}` publishes a new snapshot
/// version whose user is immediately servable on all three tiers — exact,
/// approx (index rebuilt in lockstep), and the seen-filtered fallback.
#[test]
fn fold_in_verb_publishes_a_new_version_serving_the_cold_user_on_every_tier() {
    let ds = dataset();
    let model = trained_model(&ds);
    let ctx = Arc::new(ServeContext::from_dataset(&ds));
    let index_cfg = Some(IndexConfig { clusters: 11, ..IndexConfig::default() });
    let snap = ModelSnapshot::build_with_index(model, Precision::F64, &ctx, "initial", index_cfg)
        .expect("valid snapshot");
    // A deadline at or below 1000 ms routes through the approx tier; the
    // generous real budget keeps the routing deterministic under load.
    let cfg = ServerConfig {
        approx_deadline_ms: 1000,
        default_deadline_ms: 10_000,
        ..ServerConfig::default()
    };
    let server = Server::start(cfg, Arc::clone(&ctx), snap).expect("server starts");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Before the fold-in, the signup id only gets the degraded answer.
    let new_user = ctx.n_users();
    let resp = client.recommend(&request(new_user, 10, Some(10_000))).expect("degrades");
    assert_eq!(resp.served_by, ServedBy::Fallback);
    assert_eq!(resp.reason.as_deref(), Some("unknown_user"));
    assert_eq!(resp.model_version, 1);

    // A divergent fold-in candidate is rejected; version 1 keeps serving.
    let j = client.fold_in(false, &[1, 4], Some(60), Some(1000.0)).expect("round-trips");
    assert_eq!(j.get("fold_in").and_then(|v| v.as_str()), Some("rejected"));
    assert!(
        j.get("reason").and_then(|v| v.as_str()).is_some(),
        "a rejection explains itself"
    );
    assert_eq!(server.store().get().version(), 1, "rejected candidate never went live");

    // The real fold-in publishes version 2 carrying the new user, with the
    // retrieval index rebuilt and stamped in lockstep.
    let positives = vec![1usize, 4, 9];
    let j = client.fold_in(false, &positives, None, None).expect("round-trips");
    assert_eq!(j.get("fold_in").and_then(|v| v.as_str()), Some("swapped"));
    assert_eq!(j.get("entity").and_then(|v| v.as_str()), Some("user"));
    assert_eq!(j.get("new_id").and_then(|v| v.as_u64()), Some(new_user as u64));
    assert_eq!(j.get("model_version").and_then(|v| v.as_u64()), Some(2));
    let live = server.store().get();
    assert_eq!(live.version(), 2);
    assert_eq!(live.index().expect("index rebuilt").model_version(), 2, "lockstep");

    // Exact tier: served, on the new version, with the positives masked.
    let resp = client.recommend(&request(new_user, 10, Some(10_000))).expect("exact");
    assert_eq!(resp.served_by, ServedBy::Exact);
    assert_eq!(resp.model_version, 2);
    assert!(!resp.items.is_empty());
    for &v in &positives {
        assert!(!resp.items.contains(&v), "seen item {v} must stay masked");
    }

    // Approx tier: the tight-deadline route probes the rebuilt index.
    let resp = client.recommend(&request(new_user, 10, Some(1000))).expect("approx");
    assert_eq!(resp.served_by, ServedBy::Approx);
    assert_eq!(resp.model_version, 2);
    assert!(resp.approx.is_some(), "approx responses carry their probe config");
    for &v in &positives {
        assert!(!resp.items.contains(&v), "seen item {v} must stay masked");
    }

    // Fallback tier: a zero deadline still knows the folded user's history.
    let resp = client.recommend(&request(new_user, 10, Some(0))).expect("fallback");
    assert_eq!(resp.served_by, ServedBy::Fallback);
    assert_eq!(resp.reason.as_deref(), Some("deadline"));
    for &v in &positives {
        assert!(!resp.items.contains(&v), "seen item {v} must stay masked");
    }

    // The counters and the stats verb record both outcomes.
    let stats = server.stats();
    assert_eq!(stats.fold_in_success, 1);
    assert_eq!(stats.fold_in_rejected, 1);
    let j = client.stats().expect("stats round-trips");
    assert_eq!(j.get("fold_in_success").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(j.get("fold_in_rejected").and_then(|v| v.as_u64()), Some(1));
    drop(client);
    server.shutdown();
}

/// The CLI wiring end to end: `logirec serve` as a real process, driven by
/// `logirec request` for an exact response, a deadline-starved fallback,
/// and a clean shutdown.
#[test]
fn cli_serve_and_request_round_trip() {
    use std::process::Command;

    let dir = tmp("cli");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let data = dir.join("data");
    let model = dir.join("model.logirec");
    let bin = env!("CARGO_BIN_EXE_logirec");

    let out = Command::new(bin)
        .args(["generate", "--dataset", "ciao", "--scale", "tiny", "--seed", "5", "--out"])
        .arg(&data)
        .output()
        .expect("generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = Command::new(bin)
        .args(["train", "--data"])
        .arg(&data)
        .arg("--model")
        .arg(&model)
        .args(["--epochs", "2", "--dim", "8"])
        .output()
        .expect("train");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Bind port 0 and read the actual address back from the serve banner —
    // no fixed port, no collision with parallel test runs.
    let mut serve = Command::new(bin)
        .args(["serve", "--data"])
        .arg(&data)
        .arg("--model")
        .arg(&model)
        .args(["--addr", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut banner = String::new();
    // Keep the pipe's read end alive for the server's whole lifetime so its
    // later prints never hit a closed pipe.
    let mut serve_stdout = {
        use std::io::BufRead;
        let mut r = std::io::BufReader::new(serve.stdout.take().expect("piped stdout"));
        r.read_line(&mut banner).expect("read banner");
        r
    };
    let addr = banner
        .split_whitespace()
        .find(|w| w.starts_with("127.0.0.1:"))
        .unwrap_or_else(|| panic!("no address in serve banner: {banner:?}"))
        .to_string();

    let sock: SocketAddr = addr.parse().expect("addr");
    let policy = RetryPolicy {
        attempts: 40,
        base_backoff: Duration::from_millis(25),
        max_backoff: Duration::from_millis(100),
        ..RetryPolicy::default()
    };
    let (resp, _) = recommend_with_retry(sock, &request(1, 5, Some(10_000)), &policy)
        .expect("server comes up");
    assert_eq!(resp.served_by, ServedBy::Exact);
    assert_eq!(resp.items.len(), 5);

    let out = Command::new(bin)
        .args(["request", "--addr", &addr, "--user", "1", "--k", "5", "--deadline-ms", "0"])
        .output()
        .expect("request");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("served_by: fallback (deadline)"), "unexpected output: {text}");

    let out = Command::new(bin)
        .args(["request", "--addr", &addr, "--shutdown"])
        .output()
        .expect("shutdown");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let status = serve.wait().expect("serve exits");
    assert!(status.success(), "serve must exit cleanly after shutdown");
    let mut rest = String::new();
    let _ = std::io::Read::read_to_string(&mut serve_stdout, &mut rest);
    let _ = std::fs::remove_dir_all(&dir);
}
