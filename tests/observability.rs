//! Observability acceptance tests: the latency percentiles reported by
//! `{"stats":true}` and the Prometheus-style `{"metrics":true}` exposition
//! must match the server's authoritative histograms at the wire level, and
//! the offline span profiler must attribute (nearly) all of a training
//! run's wall time to named spans.

use std::path::PathBuf;
use std::sync::Arc;

use logirec_suite::core::{train, LogiRec, LogiRecConfig, Precision};
use logirec_suite::data::interactions::Dataset;
use logirec_suite::data::{DatasetSpec, Scale};
use logirec_suite::obs::json::{self, Json};
use logirec_suite::obs::profile::profile_trace_file;
use logirec_suite::obs::Telemetry;
use logirec_suite::serve::{
    Client, ModelSnapshot, Request, ServeContext, Server, ServerConfig,
};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("logirec-observability-{name}-{}", std::process::id()))
}

fn dataset() -> Dataset {
    DatasetSpec::ciao(Scale::Tiny).generate(17)
}

/// Starts a server and drives `n` nominal exact-path requests through it.
fn server_after_requests(n: usize) -> (Server, Client) {
    let ds = dataset();
    let cfg = LogiRecConfig { epochs: 2, ..LogiRecConfig::test_config() };
    let model = train(cfg, &ds).0;
    let ctx = Arc::new(ServeContext::from_dataset(&ds));
    let snap = ModelSnapshot::build(model, Precision::F64, &ctx, "obs").expect("valid snapshot");
    let server = Server::start(ServerConfig::default(), Arc::clone(&ctx), snap)
        .expect("server starts");
    let mut client = Client::connect(server.addr()).expect("connect");
    for i in 0..n {
        let req = Request { id: i as u64, user: i % ctx.n_users(), k: 5, deadline_ms: None };
        client.recommend(&req).expect("nominal request");
    }
    (server, client)
}

/// `{"stats":true}` must carry p50/p95/p99 per degradation path, and the
/// values on the wire must be exactly the quantiles of the server's own
/// latency histograms — not a recomputation that can drift.
#[test]
fn stats_percentiles_match_the_latency_histograms() {
    let (server, mut client) = server_after_requests(40);
    let line = client.roundtrip_line("{\"stats\":true}").expect("stats roundtrip");
    let j = json::parse(&line).expect("stats line parses");
    assert_eq!(j.get("stats").and_then(Json::as_bool), Some(true));
    assert_eq!(j.get("requests").and_then(Json::as_u64), Some(40));

    let [exact, approx, fallback, shed] = server.latency_snapshot();
    assert_eq!(exact.count, 40, "all nominal requests served exactly");
    for (path, h) in
        [("exact", &exact), ("approx", &approx), ("fallback", &fallback), ("shed", &shed)]
    {
        let (p50, p95, p99) = h.percentiles();
        for (suffix, want) in [("p50_us", p50), ("p95_us", p95), ("p99_us", p99)] {
            let key = format!("{path}_{suffix}");
            assert_eq!(
                j.get(&key).and_then(Json::as_u64),
                Some(want),
                "{key} on the wire must equal the histogram quantile"
            );
        }
    }
    // Quantile sanity on the populated path.
    let (p50, p95, p99) = exact.percentiles();
    assert!(p50 <= p95 && p95 <= p99, "percentiles must be ordered");
    assert!(p99 > 0, "40 real requests cannot all take 0us");
    server.shutdown();
}

/// The `{"metrics":true}` admin verb must return the same exposition text
/// `Server::exposition` renders, with counters and latency quantiles that
/// match the authoritative stats.
#[test]
fn metrics_exposition_matches_server_state_over_the_wire() {
    let (server, mut client) = server_after_requests(25);
    let line = client.roundtrip_line("{\"metrics\":true}").expect("metrics roundtrip");
    let j = json::parse(&line).expect("metrics line parses");
    assert_eq!(j.get("metrics").and_then(Json::as_bool), Some(true));
    let body = j.get("body").and_then(Json::as_str).expect("exposition body").to_string();

    // Counters reflect the driven load; families are typed and unique.
    assert!(body.contains("# TYPE logirec_serve_requests_total counter\n"), "{body}");
    assert!(body.contains("logirec_serve_requests_total 25\n"), "{body}");
    assert!(body.contains("logirec_serve_exact_total 25\n"), "{body}");
    assert!(body.contains("logirec_serve_shed_total 0\n"), "{body}");
    assert!(body.contains("logirec_serve_model_version 1\n"), "{body}");
    assert_eq!(
        body.matches("# TYPE logirec_serve_requests_total counter").count(),
        1,
        "each family must be emitted exactly once"
    );

    // Latency summary lines equal the histogram quantiles bit-for-bit.
    let [exact, _, _, _] = server.latency_snapshot();
    for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
        let want = format!(
            "logirec_serve_exact_latency_us{{quantile=\"{label}\"}} {}\n",
            exact.quantile(q)
        );
        assert!(body.contains(&want), "missing {want:?} in\n{body}");
    }
    assert!(body.contains(&format!("logirec_serve_exact_latency_us_count {}\n", exact.count)));
    assert!(body.contains(&format!("logirec_serve_exact_latency_us_sum {}\n", exact.sum)));

    // The in-process accessor renders the same families (RSS and inflight
    // gauges may move between scrapes, so compare the stable lines).
    let direct = server.exposition();
    for line in body.lines().filter(|l| {
        !l.contains("peak_rss_bytes") && !l.contains("inflight")
    }) {
        assert!(direct.contains(line), "wire line {line:?} missing from Server::exposition");
    }
    server.shutdown();
}

/// A peak-RSS gauge must appear in the exposition on Linux — serving is
/// where the memory ceiling matters operationally.
#[cfg(target_os = "linux")]
#[test]
fn exposition_reports_a_peak_rss_gauge() {
    let (server, _client) = server_after_requests(1);
    let body = server.exposition();
    assert!(body.contains("# TYPE logirec_process_peak_rss_bytes gauge\n"), "{body}");
    let peak: f64 = body
        .lines()
        .find_map(|l| l.strip_prefix("logirec_process_peak_rss_bytes "))
        .expect("gauge value line")
        .parse()
        .expect("numeric gauge");
    assert!(peak > 1e6, "a live process peaks above 1MB, got {peak}");
    server.shutdown();
}

/// The offline profiler must attribute at least 90% of a training run's
/// wall time to named spans — the acceptance bar for "no un-instrumented
/// time on the hot path".
#[test]
fn trace_profile_attributes_training_wall_time_to_spans() {
    let path = tmp("train.jsonl");
    let _ = std::fs::remove_file(&path);
    let tel = Telemetry::builder().jsonl(&path).build().expect("jsonl sink");
    let ds = dataset();
    let cfg = LogiRecConfig {
        epochs: 2,
        telemetry: tel.clone(),
        ..LogiRecConfig::test_config()
    };
    let model: LogiRec = train(cfg, &ds).0;
    assert!(model.all_finite());
    tel.finish();

    let profile = profile_trace_file(&path).expect("trace profiles");
    assert!(
        profile.coverage() >= 0.9,
        "spans must cover >=90% of wall time, got {:.1}% over {}us",
        profile.coverage() * 100.0,
        profile.wall_us
    );
    let names: Vec<&str> = profile.rows.iter().map(|r| r.name.as_str()).collect();
    assert!(names.contains(&"epoch"), "per-epoch spans must be present: {names:?}");
    let rendered = profile.render(10);
    assert!(rendered.contains("epoch"), "{rendered}");
    let _ = std::fs::remove_file(&path);
}
