//! End-to-end temporal-replay acceptance: a frozen model trained on the
//! warm past, with the cold future streamed in through the event log and
//! compaction, must land within a pinned margin of the matched full
//! retrain on the cold users' holdout — and the compaction machinery must
//! survive injected divergence (rollback) and a mid-compaction kill
//! (checkpoint recovery) without losing determinism.

use std::path::PathBuf;

use logirec_suite::core::faults::{flip_bit, Fault, FaultPlan};
use logirec_suite::core::stream::{
    compact, fold_in_user, recover_from_checkpoint, CompactionOptions, EventLog, FoldInOptions,
};
use logirec_suite::core::{train, LogiRec, LogiRecConfig};
use logirec_suite::data::{DatasetSpec, ReplayScenario, Scale, Split};
use logirec_suite::eval::evaluate;
use logirec_suite::hyperbolic::{lorentz, poincare};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("logirec-replay-{name}-{}", std::process::id()))
}

fn scenario() -> ReplayScenario {
    ReplayScenario::build(&DatasetSpec::ciao(Scale::Tiny), 13, 0.1)
}

fn cfg() -> LogiRecConfig {
    LogiRecConfig { epochs: 8, eval_every: 0, ..LogiRecConfig::test_config() }
}

/// Trains the frozen model on the warm past and streams the cold future
/// through the event log + one compaction pass. Returns the streamed model
/// (grown to the full id space).
fn stream_cold_future(sc: &ReplayScenario) -> LogiRec {
    let (mut m, _) = train(cfg(), &sc.warm);
    m.propagate(&sc.warm.train);
    let mut log = EventLog::new();
    for (u, v, t) in sc.stream_events() {
        log.append(u, v, t);
    }
    let opts = CompactionOptions::for_config(&m.cfg);
    let (_grown, report) = compact(&mut m, &sc.warm.train, &mut log, &opts).expect("compact");
    assert!(!report.rolled_back, "healthy stream must not roll back: {:?}", report.rollback_reason);
    assert!(log.pending().is_empty());
    // A cold user whose every event is held out never appears in the
    // stream; fold them in with zero revealed positives so the full id
    // space is servable (the base point: a layer-scaled table centroid).
    let fold = FoldInOptions::for_config(&m.cfg);
    while m.users.rows() < sc.replay.n_users() {
        fold_in_user(&mut m, &[], &fold).expect("fold in eventless cold user");
    }
    m
}

/// The headline acceptance: streamed cold-start quality on the cold
/// holdout stays within a pinned margin of the matched full retrain, and
/// both are meaningfully above zero.
#[test]
fn streamed_cold_start_tracks_the_full_retrain_within_margin() {
    let sc = scenario();
    let streamed = stream_cold_future(&sc);
    let s = evaluate(&streamed, &sc.replay, Split::Test, &[10], 2);

    let (mut retrained, _) = train(cfg(), &sc.replay);
    retrained.propagate(&sc.replay.train);
    let r = evaluate(&retrained, &sc.replay, Split::Test, &[10], 2);

    // Only cold users carry test items, so both numbers are pure
    // cold-start quality under identical masking.
    assert_eq!(s.users, r.users, "both models must score the same cold users");
    assert!(r.recall_at(10) > 0.0, "retrain baseline is vacuous");
    assert!(s.recall_at(10) > 0.0, "streamed model ranks nothing");
    // Pinned margin at Tiny scale (the paper-scale 10 % bound lives in
    // replay_bench): streaming must retain at least half the retrain's
    // HR@10 and NDCG@10.
    assert!(
        s.recall_at(10) >= 0.5 * r.recall_at(10),
        "streamed HR@10 {:.4} fell below half of retrain {:.4}",
        s.recall_at(10),
        r.recall_at(10)
    );
    assert!(
        s.ndcg_at(10) >= 0.5 * r.ndcg_at(10),
        "streamed NDCG@10 {:.4} fell below half of retrain {:.4}",
        s.ndcg_at(10),
        r.ndcg_at(10)
    );
}

/// Injected divergence mid-compaction (an item kicked out of the ball)
/// must roll the parameters back to their pre-compaction values — the
/// warm rows come through byte-identical — while keeping the grown shapes
/// and reporting the violation.
#[test]
fn compaction_rolls_back_on_injected_divergence() {
    let sc = scenario();
    let (mut m, _) = train(cfg(), &sc.warm);
    m.propagate(&sc.warm.train);
    let users_before = m.users.as_slice().to_vec();
    let items_before = m.items.as_slice().to_vec();

    let plan = FaultPlan::new(5, vec![Fault::ItemBoundaryEscape { epoch: 0 }]);
    m.cfg.faults = Some(plan.clone());
    let mut log = EventLog::new();
    for (u, v, t) in sc.stream_events() {
        log.append(u, v, t);
    }
    let opts = CompactionOptions::for_config(&m.cfg);
    let (_grown, report) = compact(&mut m, &sc.warm.train, &mut log, &opts).expect("compact");

    assert!(plan.exhausted(), "the fault never fired: {:?}", plan.fired());
    assert!(report.rolled_back, "boundary escape must trigger a rollback");
    let reason = report.rollback_reason.as_deref().unwrap_or("");
    assert!(reason.contains("ball"), "unexpected rollback reason {reason:?}");
    assert_eq!(report.epochs_run, 1, "rollback must stop the incremental pass");
    // Rolled back to pre-compaction parameters: warm rows byte-identical,
    // grown shapes kept, everything healthy and servable.
    let bit_eq = |a: &[f64], b: &[f64]| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(bit_eq(&m.users.as_slice()[..users_before.len()], &users_before));
    assert!(bit_eq(&m.items.as_slice()[..items_before.len()], &items_before));
    assert!(m.users.rows() > users_before.len() / m.cfg.ambient_dim());
    assert!(m.all_finite());
    assert!(m.has_state());
    for v in 0..m.items.rows() {
        assert!(poincare::in_ball(m.items.row(v)), "item {v} out of ball after rollback");
    }
    for u in 0..m.users.rows() {
        assert!(lorentz::on_manifold(m.users.row(u), 1e-6), "user {u} off sheet after rollback");
    }
}

/// A process killed mid-compaction restarts from the durable
/// pre-compaction checkpoint and, replaying the same durable event log,
/// lands bit-identical to the run that never died. A corrupted checkpoint
/// is detected, never silently restored.
#[test]
fn kill_mid_compaction_recovers_and_replays_bit_identical() {
    let sc = scenario();
    let (mut base, _) = train(cfg(), &sc.warm);
    base.propagate(&sc.warm.train);
    let path = tmp("ckpt");
    let opts = CompactionOptions {
        checkpoint_path: Some(path.clone()),
        ..CompactionOptions::for_config(&base.cfg)
    };
    let fill = |log: &mut EventLog| {
        for (u, v, t) in sc.stream_events() {
            log.append(u, v, t);
        }
    };

    // Life that never dies.
    let mut straight = base.clone();
    let mut log = EventLog::new();
    fill(&mut log);
    compact(&mut straight, &sc.warm.train, &mut log, &opts).expect("straight run");

    // Life that dies mid-compaction: the pass mutated the tables, but the
    // durable state (checkpoint + event log) survives the kill.
    let mut killed = base.clone();
    let mut doomed = EventLog::new();
    fill(&mut doomed);
    compact(&mut killed, &sc.warm.train, &mut doomed, &opts).expect("doomed run");
    recover_from_checkpoint(&mut killed, &path).expect("recover");
    assert_eq!(killed.users, base.users, "recovery must restore the pre-compaction users");
    assert_eq!(killed.items, base.items, "recovery must restore the pre-compaction items");
    assert!(!killed.has_state(), "recovery drops the forward state");

    // Second life: replay the durable log from the recovered tables.
    let mut replayed = EventLog::new();
    fill(&mut replayed);
    killed.propagate(&sc.warm.train);
    compact(&mut killed, &sc.warm.train, &mut replayed, &opts).expect("replay run");
    assert_eq!(killed.users, straight.users, "resumed compaction diverged on users");
    assert_eq!(killed.items, straight.items, "resumed compaction diverged on items");

    // A torn/corrupted checkpoint must fail recovery loudly.
    flip_bit(&path, 3).expect("flip");
    let mut victim = base.clone();
    assert!(recover_from_checkpoint(&mut victim, &path).is_err());
    assert_eq!(victim.users, base.users, "failed recovery must not touch the model");
    let _ = std::fs::remove_file(&path);
}
