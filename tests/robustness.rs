//! Robustness / failure-injection tests: degenerate datasets, hostile
//! parameter values, and corrupted state must fail loudly or degrade
//! gracefully — never poison training with NaNs.

use logirec_suite::core::{train, LogiRecConfig};
use logirec_suite::data::interactions::{temporal_split, Dataset};
use logirec_suite::data::{DatasetSpec, Scale, Split};
use logirec_suite::eval::evaluate;
use logirec_suite::taxonomy::{ExclusionRule, LogicalRelations, Taxonomy};

fn tiny_cfg() -> LogiRecConfig {
    LogiRecConfig {
        dim: 8,
        epochs: 3,
        eval_every: 0,
        patience: 0,
        ..LogiRecConfig::test_config()
    }
}

/// A minimal handcrafted dataset: 3 users, 4 items, 2 tags, sparse history.
fn degenerate_dataset() -> Dataset {
    let taxonomy = Taxonomy::from_parents(vec![
        ("root-a".into(), None),
        ("leaf-a".into(), Some(0)),
    ]);
    // Item 3 is never interacted with; user 2 has a single event.
    let events = vec![
        (0, 0, 0),
        (0, 1, 1),
        (0, 2, 2),
        (1, 1, 0),
        (1, 2, 1),
        (1, 0, 2),
        (2, 0, 0),
    ];
    let (train, validation, test) = temporal_split(3, 4, &events);
    let item_tags = vec![vec![1], vec![1], vec![0], vec![1]];
    let relations = LogicalRelations::extract(&taxonomy, &item_tags, ExclusionRule::AllSiblings);
    Dataset {
        name: "degenerate".into(),
        train,
        validation,
        test,
        taxonomy,
        item_tags,
        relations,
    }
}

#[test]
fn training_survives_degenerate_dataset() {
    let ds = degenerate_dataset();
    let (model, report) = train(tiny_cfg(), &ds);
    assert!(model.all_finite());
    assert!(report.history.iter().all(|h| h.rank_loss.is_finite()));
}

#[test]
fn training_survives_extreme_hyperparameters() {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(51);
    for (lr, lambda, margin) in [(10.0, 0.0, 0.0), (1e-9, 100.0, 50.0), (0.5, 1.0, 0.0)] {
        let cfg = LogiRecConfig { lr, lambda, margin, ..tiny_cfg() };
        let (model, _) = train(cfg, &ds);
        assert!(
            model.all_finite(),
            "non-finite parameters at lr={lr}, lambda={lambda}, m={margin}"
        );
        let res = evaluate(&model, &ds, Split::Test, &[10], 2);
        assert!(res.recall_at(10).is_finite());
    }
}

#[test]
fn training_survives_dimension_one() {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(52);
    let cfg = LogiRecConfig { dim: 1, ..tiny_cfg() };
    let (model, _) = train(cfg, &ds);
    assert!(model.all_finite());
}

#[test]
fn corrupted_parameters_are_detected() {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(53);
    let (mut model, _) = train(tiny_cfg(), &ds);
    assert!(model.all_finite());
    model.items.row_mut(0)[0] = f64::NAN;
    assert!(!model.all_finite(), "NaN injection must be visible");
}

#[test]
fn zero_layer_and_many_layer_models_both_run() {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(54);
    for layers in [0usize, 6] {
        let cfg = LogiRecConfig { layers, ..tiny_cfg() };
        let (model, _) = train(cfg, &ds);
        assert!(model.all_finite(), "layers = {layers}");
    }
}

#[test]
fn never_interacted_items_still_get_ranked() {
    let ds = degenerate_dataset();
    let (mut model, _) = train(tiny_cfg(), &ds);
    model.propagate(&ds.train);
    let mut scores = vec![0.0; ds.n_items()];
    logirec_suite::eval::Ranker::score_user(&model, 0, &mut scores);
    // Item 3 was never interacted with but must still receive a finite
    // score (it sits at its layer-0 embedding after propagation).
    assert!(scores[3].is_finite());
}
