//! Integration coverage of the Table III ablation variants: every variant
//! must train to finite, rankable state, and the structural toggles must
//! observably change the model.

use logirec_suite::core::{train, Geometry, LogiRecConfig, Variant};
use logirec_suite::data::{DatasetSpec, Scale, Split};
use logirec_suite::eval::evaluate;

fn base_cfg() -> LogiRecConfig {
    LogiRecConfig {
        dim: 16,
        epochs: 6,
        eval_every: 0,
        patience: 0,
        ..LogiRecConfig::default()
    }
}

#[test]
fn every_table3_variant_trains_and_ranks() {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(21);
    for variant in Variant::table3() {
        let cfg = variant.apply(base_cfg());
        let (model, report) = train(cfg, &ds);
        assert!(model.all_finite(), "{}: non-finite parameters", variant.label());
        assert!(report.history.iter().all(|h| h.rank_loss.is_finite()));
        let r = evaluate(&model, &ds, Split::Test, &[10], 2).recall_at(10);
        assert!(r.is_finite() && r >= 0.0, "{}: recall {r}", variant.label());
    }
}

#[test]
fn without_hgcn_uses_zero_layers() {
    let cfg = Variant::WithoutHgcn.apply(base_cfg());
    assert_eq!(cfg.layers, 0);
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(22);
    let (model, _) = train(cfg, &ds);
    // With L = 0 the final tangent equals the layer-0 tangent.
    let st = model.state();
    for u in 0..5 {
        assert_eq!(st.user_final_tan.row(u), st.z_u0.row(u));
    }
}

#[test]
fn without_hyper_is_euclidean_end_to_end() {
    let cfg = Variant::WithoutHyper.apply(base_cfg());
    assert_eq!(cfg.geometry, Geometry::Euclidean);
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(23);
    let (model, _) = train(cfg, &ds);
    assert_eq!(model.users.dim(), model.cfg.dim, "no time coordinate in Euclidean mode");
    assert_eq!(model.state().user_final.dim(), model.cfg.dim);
}

#[test]
fn variant_outputs_differ_from_full_model() {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(24);
    let (full, _) = train(base_cfg(), &ds);
    let full_r = evaluate(&full, &ds, Split::Test, &[20], 2).recall_at(20);
    for variant in [Variant::WithoutHgcn, Variant::WithoutHyper] {
        let (m, _) = train(variant.apply(base_cfg()), &ds);
        let r = evaluate(&m, &ds, Split::Test, &[20], 2).recall_at(20);
        assert!(
            (r - full_r).abs() > 1e-9,
            "{} should produce different rankings than the full model",
            variant.label()
        );
    }
}
