//! Central-difference gradient checks for the sharded loss path.
//!
//! The dense kernels in `logirec_core::losses` are FD-checked by the core
//! crate's own tests; these tests pin the *sharded* implementations the
//! trainer actually runs — `rank_loss_grad_sharded` (with and without
//! per-user mining weights α) and `logic_loss_grad_sharded` over all four
//! logic losses — against numerical derivatives and against the dense
//! reference accumulation.

use logirec_suite::core::losses::{
    logic_loss_grad_sharded, rank_loss_grad, rank_loss_grad_sharded, LogicBatch,
};
use logirec_suite::core::{LogiRec, LogiRecConfig, PropGraph};
use logirec_suite::data::{Dataset, DatasetSpec, Scale};
use logirec_suite::linalg::Embedding;
use logirec_suite::taxonomy::TagId;

fn setup() -> (LogiRec, Dataset) {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(17);
    let mut cfg = LogiRecConfig::test_config();
    cfg.dim = 4;
    let mut m = LogiRec::new(cfg, &ds);
    m.propagate(&ds.train);
    (m, ds)
}

fn triplets(ds: &Dataset, n: usize) -> Vec<(usize, usize, usize)> {
    // Deterministic triplets: positive from the user's train list, negative
    // by stride; no RNG needed for a gradient check.
    let mut out = Vec::new();
    for u in 0..ds.n_users() {
        let pos = ds.train.items_of(u);
        if pos.is_empty() {
            continue;
        }
        let vp = pos[0];
        let vq = (vp + 7 + u) % ds.n_items();
        if !ds.train.contains(u, vq) {
            out.push((u, vp, vq));
        }
        if out.len() == n {
            break;
        }
    }
    out
}

/// Sharded rank loss as a scalar function of the model parameters
/// (re-propagates, so FD probes the full chain the trainer differentiates).
fn rank_loss_of(
    m: &LogiRec,
    ds: &Dataset,
    trips: &[(usize, usize, usize)],
    alpha: Option<&[f64]>,
) -> f64 {
    let mut m = m.clone();
    m.propagate(&ds.train);
    rank_loss_grad_sharded(&m, trips, m.cfg.margin, alpha, 0.25, 3).loss
}

fn rank_param_grads(
    m: &LogiRec,
    ds: &Dataset,
    trips: &[(usize, usize, usize)],
    alpha: Option<&[f64]>,
) -> Embedding {
    let pg = PropGraph::build(&ds.train);
    let rg = rank_loss_grad_sharded(m, trips, m.cfg.margin, alpha, 0.25, 3);
    let ambient = m.cfg.ambient_dim();
    let mut g_user_final = Embedding::zeros(m.users.rows(), ambient);
    let mut g_item_final = Embedding::zeros(m.items.rows(), ambient);
    rg.users.scatter_add(&mut g_user_final);
    rg.items.scatter_add(&mut g_item_final);
    let (_, g_items) = m.backward_rank_graph(&g_user_final, &g_item_final, &pg);
    g_items
}

fn check_rank_fd(alpha: Option<Vec<f64>>) {
    let (m, ds) = setup();
    let trips = triplets(&ds, 24);
    assert!(trips.len() >= 8, "need a non-trivial triplet batch");
    let a = alpha.as_deref();
    let g_items = rank_param_grads(&m, &ds, &trips, a);
    let h = 1e-6;
    let mut checked = 0;
    for &(_, vp, _) in trips.iter().take(4) {
        for col in 0..2 {
            let mut mp = m.clone();
            mp.items.row_mut(vp)[col] += h;
            let fp = rank_loss_of(&mp, &ds, &trips, a);
            let mut mm = m.clone();
            mm.items.row_mut(vp)[col] -= h;
            let fm = rank_loss_of(&mm, &ds, &trips, a);
            let num = (fp - fm) / (2.0 * h);
            let ana = g_items.row(vp)[col];
            assert!(
                (num - ana).abs() < 1e-4 * (1.0 + num.abs()),
                "item grad[{vp}][{col}] (alpha: {}): {num} vs {ana}",
                alpha.is_some()
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 8);
}

#[test]
fn sharded_rank_gradients_match_finite_differences() {
    check_rank_fd(None);
}

#[test]
fn sharded_rank_gradients_match_finite_differences_with_alpha() {
    let (_, ds) = setup();
    // Distinct, non-unit weights so the α path is actually exercised.
    let alpha: Vec<f64> = (0..ds.n_users()).map(|u| 0.4 + 0.05 * (u % 9) as f64).collect();
    check_rank_fd(Some(alpha));
}

/// The sharded rank path must agree with the dense reference to
/// floating-point re-association error (the shards change summation
/// order, nothing else).
#[test]
fn sharded_rank_gradients_match_dense_reference()  {
    let (m, ds) = setup();
    let trips = triplets(&ds, 40);
    let dense = rank_loss_grad(&m, &trips, m.cfg.margin, None, 0.25);
    for threads in [1, 2, 8] {
        let sharded = rank_loss_grad_sharded(&m, &trips, m.cfg.margin, None, 0.25, threads);
        assert_eq!(sharded.active, dense.active);
        assert!((sharded.loss - dense.loss).abs() < 1e-12 * (1.0 + dense.loss.abs()));
        let mut g_items = Embedding::zeros(m.items.rows(), m.cfg.ambient_dim());
        sharded.items.scatter_add(&mut g_items);
        for (i, (s, d)) in g_items.as_slice().iter().zip(dense.item_final.as_slice()).enumerate() {
            assert!(
                (s - d).abs() < 1e-12 * (1.0 + d.abs()),
                "threads={threads} flat item grad {i}: {s} vs {d}"
            );
        }
    }
}

/// FD check of `logic_loss_grad_sharded` over each loss type separately:
/// perturb a tag parameter, recompute the sharded loss, compare slopes.
#[test]
fn sharded_logic_gradients_match_finite_differences() {
    let (m, ds) = setup();
    let rel = &ds.relations;
    let ex: Vec<(TagId, TagId)> = rel.exclusion.iter().map(|&(a, b, _)| (a, b)).collect();
    let int: Vec<(TagId, TagId)> = rel.intersection.iter().map(|&(a, b, _)| (a, b)).collect();
    let cases: Vec<(&str, LogicBatch<'_>)> = vec![
        ("membership", LogicBatch::Membership(&rel.membership[..12.min(rel.membership.len())])),
        ("hierarchy", LogicBatch::Hierarchy(&rel.hierarchy[..10.min(rel.hierarchy.len())])),
        ("exclusion", LogicBatch::Exclusion(&ex[..10.min(ex.len())])),
        ("intersection", LogicBatch::Intersection(&int[..10.min(int.len())])),
    ];
    for (name, batch) in cases {
        if batch.is_empty() {
            continue;
        }
        let batches = [(batch, 1.3)];
        let loss_of = |m: &LogiRec| logic_loss_grad_sharded(m, &batches, 3).loss;
        let shard = logic_loss_grad_sharded(&m, &batches, 3);
        let mut g_tags = Embedding::zeros(m.tags.rows(), m.cfg.dim);
        shard.tags.scatter_add(&mut g_tags);
        // Hinge losses can be fully inactive on a tiny dataset
        // (intersection often is); the FD check below then verifies the
        // zero gradient is correct rather than vacuously passing.
        assert!(
            shard.rows_touched() > 0 || shard.loss == 0.0,
            "{name}: positive loss but no gradient rows touched"
        );
        let h = 1e-7;
        for t in 0..3.min(m.tags.rows()) {
            for col in 0..2 {
                let mut mp = m.clone();
                mp.tags.row_mut(t)[col] += h;
                let mut mm = m.clone();
                mm.tags.row_mut(t)[col] -= h;
                let num = (loss_of(&mp) - loss_of(&mm)) / (2.0 * h);
                let ana = g_tags.row(t)[col];
                assert!(
                    (num - ana).abs() < 2e-4 * (1.0 + num.abs()),
                    "{name}: tag grad[{t}][{col}]: {num} vs {ana}"
                );
            }
        }
    }
}

/// Membership is the only logic loss with item gradients; FD-check those
/// through the sharded path too.
#[test]
fn sharded_membership_item_gradients_match_finite_differences() {
    let (m, ds) = setup();
    let pairs = &ds.relations.membership[..12.min(ds.relations.membership.len())];
    let batches = [(LogicBatch::Membership(pairs), 1.0)];
    let loss_of = |m: &LogiRec| logic_loss_grad_sharded(m, &batches, 2).loss;
    let shard = logic_loss_grad_sharded(&m, &batches, 2);
    let mut g_items = Embedding::zeros(m.items.rows(), m.cfg.dim);
    shard.items.scatter_add(&mut g_items);
    let v = pairs[0].0;
    let h = 1e-7;
    for col in 0..2 {
        let mut mp = m.clone();
        mp.items.row_mut(v)[col] += h;
        let mut mm = m.clone();
        mm.items.row_mut(v)[col] -= h;
        let num = (loss_of(&mp) - loss_of(&mm)) / (2.0 * h);
        let ana = g_items.row(v)[col];
        assert!(
            (num - ana).abs() < 2e-4 * (1.0 + num.abs()),
            "membership item grad[{v}][{col}]: {num} vs {ana}"
        );
    }
}
