//! Telemetry acceptance tests: a short training run must leave behind a
//! well-formed JSONL trace whose span tree mirrors what the trainer
//! actually did, recoveries must surface as structured events, and a
//! disabled handle must stay perfectly inert.

use std::path::PathBuf;

use logirec_suite::core::faults::{Fault, FaultPlan};
use logirec_suite::core::{train, LogiRecConfig};
use logirec_suite::data::{Dataset, DatasetSpec, Scale};
use logirec_suite::obs::{validate_trace_file, Telemetry};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("logirec-tel-{name}-{}.jsonl", std::process::id()))
}

fn dataset() -> Dataset {
    DatasetSpec::ciao(Scale::Tiny).generate(77)
}

fn traced_cfg(tel: &Telemetry) -> LogiRecConfig {
    LogiRecConfig {
        epochs: 4,
        eval_every: 2,
        patience: 0,
        mining: true,
        mining_refresh: 2,
        telemetry: tel.clone(),
        ..LogiRecConfig::test_config()
    }
}

/// The headline guarantee of `--trace-json`: every line parses, spans are
/// uniquely numbered and properly nested, all the instrumented phases
/// appear, and the epoch spans agree with the trainer's own report.
#[test]
fn train_trace_is_well_formed_and_matches_report() {
    let path = tmp("clean");
    let ckpt = std::env::temp_dir().join(format!("logirec-tel-ck-{}", std::process::id()));
    let tel = Telemetry::builder().jsonl(&path).build().expect("trace file");
    let ds = dataset();
    let mut cfg = traced_cfg(&tel);
    cfg.checkpoint_every = 2;
    cfg.checkpoint_path = Some(ckpt.clone());
    let (_, report) = train(cfg, &ds);
    tel.finish();

    let stats = validate_trace_file(&path).expect("trace validates");
    for kind in ["train", "epoch", "batch", "loss", "mining", "checkpoint", "eval"] {
        assert!(stats.span_count(kind) > 0, "missing span kind {kind:?}: {:?}", stats.span_kinds);
    }
    // Clean run: every epoch span is a completed epoch (rolled-back
    // attempts would add extra spans, but no faults are injected here).
    assert!(report.recoveries.is_empty());
    assert_eq!(stats.span_count("epoch"), report.epochs_run);
    assert_eq!(stats.span_count("train"), 1);
    // Both loss terms are timed every batch.
    assert_eq!(stats.span_count("loss"), 2 * stats.span_count("batch"));
    // finish() flushed the metric registry into the trace.
    assert!(stats.event_kinds.get("counter").is_some_and(|&n| n > 0));
    assert!(stats.event_kinds.get("histogram").is_some_and(|&n| n > 0));

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&ckpt);
}

/// Injected faults must show up as structured `recovery` events — one per
/// entry in `TrainReport.recoveries` — plus a matching counter.
#[test]
fn recoveries_surface_as_events_and_counters() {
    let path = tmp("faults");
    let tel = Telemetry::builder().jsonl(&path).build().expect("trace file");
    let ds = dataset();
    let mut cfg = traced_cfg(&tel);
    cfg.faults = Some(FaultPlan::new(
        11,
        vec![
            Fault::NanGradient { epoch: 1, step: 0 },
            Fault::ItemBoundaryEscape { epoch: 2 },
        ],
    ));
    let (_, report) = train(cfg, &ds);
    tel.finish();

    assert!(!report.recoveries.is_empty(), "faults should have fired");
    let stats = validate_trace_file(&path).expect("trace validates");
    assert_eq!(
        stats.event_kinds.get("recovery").copied().unwrap_or(0),
        report.recoveries.len(),
        "one recovery event per recorded recovery"
    );
    let snap = tel.metrics_snapshot();
    let recov = snap
        .counters
        .iter()
        .find(|(name, _)| *name == "trainer.recoveries")
        .map(|(_, v)| *v);
    assert_eq!(recov, Some(report.recoveries.len() as u64));

    let _ = std::fs::remove_file(&path);
}

/// The default config carries a disabled handle: training must neither
/// create files nor accumulate state, and the handle must report empty.
#[test]
fn disabled_telemetry_stays_inert() {
    let tel = Telemetry::disabled();
    let ds = dataset();
    let cfg = traced_cfg(&tel);
    assert!(!cfg.telemetry.is_enabled());
    let (_, report) = train(cfg, &ds);
    assert!(report.epochs_run > 0);

    assert!(tel.metrics_snapshot().counters.is_empty());
    assert!(tel.span_aggs().is_empty());
    assert!(tel.recent_events().is_empty());
    assert_eq!(tel.summary(), "telemetry disabled\n");
}
