//! End-to-end integration: dataset generation → training → evaluation →
//! mining, across all workspace crates.

use logirec_suite::core::mining::{
    combine_weights, consistency_weights, granularity_weights, user_profiles,
};
use logirec_suite::core::{train, LogiRecConfig};
use logirec_suite::data::{DatasetSpec, Scale, Split};
use logirec_suite::eval::{evaluate, Ranker};

fn quick_cfg() -> LogiRecConfig {
    LogiRecConfig {
        dim: 16,
        epochs: 10,
        eval_every: 0,
        patience: 0,
        ..LogiRecConfig::default()
    }
}

/// A popularity scorer — the bar any learned model must clear.
fn popularity_scores(ds: &logirec_suite::data::Dataset) -> Vec<f64> {
    (0..ds.n_items()).map(|v| ds.train.users_of(v).len() as f64).collect()
}

#[test]
fn logirec_beats_popularity_baseline() {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(5);
    let pop = popularity_scores(&ds);
    let pop_ranker = |_u: usize, out: &mut [f64]| out.copy_from_slice(&pop);
    let pop_recall = evaluate(&pop_ranker, &ds, Split::Test, &[10], 2).recall_at(10);

    // Popularity is a strong bar on a 100-item benchmark with Zipf
    // popularity; give the model a realistic (still fast) budget.
    let mut cfg = quick_cfg();
    cfg.epochs = 30;
    cfg.batch_size = 256;
    let (model, _) = train(cfg, &ds);
    let model_recall = evaluate(&model, &ds, Split::Test, &[10], 2).recall_at(10);
    assert!(
        model_recall > pop_recall,
        "LogiRec++ ({model_recall:.4}) must beat popularity ({pop_recall:.4})"
    );
}

#[test]
fn full_pipeline_is_deterministic() {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(6);
    let (m1, r1) = train(quick_cfg(), &ds);
    let (m2, r2) = train(quick_cfg(), &ds);
    assert_eq!(r1.epochs_run, r2.epochs_run);
    let e1 = evaluate(&m1, &ds, Split::Test, &[10, 20], 2);
    let e2 = evaluate(&m2, &ds, Split::Test, &[10, 20], 4);
    assert_eq!(e1.recall_at(10), e2.recall_at(10));
    assert_eq!(e1.ndcg_at(20), e2.ndcg_at(20));
}

#[test]
fn mining_pipeline_produces_coherent_profiles() {
    let ds = DatasetSpec::cd(Scale::Tiny).generate(7);
    let (model, _) = train(quick_cfg(), &ds);
    let con = consistency_weights(&ds);
    let gr = granularity_weights(&model, ds.n_users());
    let alpha = combine_weights(&con, &gr, 0.1);
    let profiles = user_profiles(&ds, &con, &gr, &alpha, 4);

    assert_eq!(profiles.len(), ds.n_users());
    let mean_alpha: f64 = alpha.iter().sum::<f64>() / alpha.len() as f64;
    assert!((mean_alpha - 1.0).abs() < 1e-9, "α normalizes to mean 1");
    for p in &profiles {
        assert!((0.0..=1.0).contains(&p.consistency));
        assert!((0.0..=1.0).contains(&p.granularity));
        assert!(p.alpha.is_finite() && p.alpha > 0.0);
        // Every reported tag was genuinely interacted with.
        let list = ds.user_tag_list(p.user);
        for &(t, c) in &p.top_tags {
            assert_eq!(list.iter().filter(|&&x| x == t).count(), c);
        }
    }
}

#[test]
fn scores_mask_and_rank_consistently_across_crates() {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(8);
    let (model, _) = train(quick_cfg(), &ds);
    // The evaluator's per-user recall vector matches a manual computation
    // for a few users.
    let res = evaluate(&model, &ds, Split::Test, &[10, 20], 2);
    for (slot, &u) in res.users.iter().take(5).enumerate() {
        let mut scores = vec![0.0; ds.n_items()];
        model.score_user(u, &mut scores);
        for &v in ds.train.items_of(u) {
            scores[v] = f64::NEG_INFINITY;
        }
        for &v in ds.validation.items_of(u) {
            scores[v] = f64::NEG_INFINITY;
        }
        let top = logirec_suite::eval::ranking::top_k_indices(&scores, 20);
        let truth = ds.test.items_of(u);
        let manual = logirec_suite::eval::recall_at_k(&top, truth);
        assert!((manual - res.per_user_recall[slot]).abs() < 1e-12);
    }
}

#[test]
fn trained_geometry_respects_taxonomy_structure() {
    use logirec_suite::hyperbolic::Ball;
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(9);
    let mut cfg = quick_cfg();
    cfg.lambda = 1.0;
    cfg.epochs = 20;
    let (model, _) = train(cfg, &ds);
    // Coarse tags should on average carry larger derived regions than the
    // deepest tags (the granularity geometry of Section V-B).
    let mean_radius = |level: usize| {
        let tags = ds.taxonomy.tags_at_level(level);
        tags.iter().map(|&t| Ball::from_center(model.tags.row(t)).radius).sum::<f64>()
            / tags.len().max(1) as f64
    };
    let coarse = mean_radius(1);
    let fine = mean_radius(ds.taxonomy.max_level());
    assert!(
        coarse > fine,
        "coarse tags should have larger regions: level1 {coarse:.3} vs deepest {fine:.3}"
    );
}
