//! Determinism contracts of the parallel training hot path.
//!
//! The sharded gradient accumulation (see DESIGN.md "Parallel training")
//! promises that `train_threads` only changes *who* computes each shard,
//! never the arithmetic: shard boundaries and the merge tree are pure
//! functions of the workload length. These tests pin that promise at the
//! coarsest level — a full `train()` run must produce bit-identical models
//! and identical reports for every thread count.

use logirec_suite::core::{train, LogiRec, LogiRecConfig, TrainReport};
use logirec_suite::data::{Dataset, DatasetSpec, Scale};

fn quick_cfg() -> LogiRecConfig {
    LogiRecConfig {
        dim: 8,
        layers: 2,
        epochs: 4,
        batch_size: 128,
        logic_batch: 32,
        negatives: 4,
        // Exercise the validation-eval and mining-refresh paths too.
        eval_every: 2,
        mining_refresh: 2,
        patience: 0,
        lambda: 0.5,
        mining: true,
        ..LogiRecConfig::default()
    }
}

/// Every coordinate of every embedding family, compared bitwise.
fn assert_bit_identical(a: &LogiRec, b: &LogiRec, what: &str) {
    for (name, x, y) in
        [("tags", &a.tags, &b.tags), ("items", &a.items, &b.items), ("users", &a.users, &b.users)]
    {
        assert_eq!(x.rows(), y.rows(), "{what}: {name} row count");
        assert_eq!(x.dim(), y.dim(), "{what}: {name} dim");
        for (i, (p, q)) in x.as_slice().iter().zip(y.as_slice()).enumerate() {
            assert!(
                p.to_bits() == q.to_bits(),
                "{what}: {name} flat index {i} differs: {p:?} vs {q:?}"
            );
        }
    }
}

fn train_with_threads(ds: &Dataset, threads: usize) -> (LogiRec, TrainReport) {
    let mut cfg = quick_cfg();
    cfg.train_threads = threads;
    train(cfg, ds)
}

#[test]
fn training_is_bit_identical_across_thread_counts() {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(11);
    let (m1, r1) = train_with_threads(&ds, 1);
    for threads in [2, 8] {
        let (mt, rt) = train_with_threads(&ds, threads);
        assert_bit_identical(&m1, &mt, &format!("train_threads={threads}"));
        assert_eq!(r1, rt, "TrainReport differs at train_threads={threads}");
    }
    // The runs actually trained (loss history populated, not a no-op).
    assert_eq!(r1.epochs_run, 4);
    assert!(r1.history.iter().all(|e| e.rank_loss.is_finite()));
}

#[test]
fn generate_is_reproducible_for_fixed_seed() {
    let a = DatasetSpec::ciao(Scale::Tiny).generate(42);
    let b = DatasetSpec::ciao(Scale::Tiny).generate(42);
    assert_eq!(a.n_users(), b.n_users());
    assert_eq!(a.n_items(), b.n_items());
    assert_eq!(a.n_tags(), b.n_tags());
    for (sa, sb) in [(&a.train, &b.train), (&a.validation, &b.validation), (&a.test, &b.test)] {
        let pa: Vec<_> = sa.iter_pairs().collect();
        let pb: Vec<_> = sb.iter_pairs().collect();
        assert_eq!(pa, pb);
    }
    assert_eq!(a.relations.membership, b.relations.membership);
    assert_eq!(a.relations.hierarchy, b.relations.hierarchy);
    let c = DatasetSpec::ciao(Scale::Tiny).generate(43);
    let pa: Vec<_> = a.train.iter_pairs().collect();
    let pc: Vec<_> = c.train.iter_pairs().collect();
    assert_ne!(pa, pc, "different seeds must differ");
}

/// Regression for the scattered `.max(1)` clamps: `negatives = 0` and
/// `logic_batch = 0` used to be patched up independently at each use site.
/// `LogiRecConfig::validated()` now normalizes them once on entry to
/// `train()`, so a zero config must behave exactly like the explicit ones.
#[test]
fn zero_knobs_train_like_one_knobs() {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(13);
    let mut zeros = quick_cfg();
    zeros.negatives = 0;
    zeros.logic_batch = 0;
    zeros.epochs = 2;
    let mut ones = quick_cfg();
    ones.negatives = 1;
    ones.logic_batch = 1;
    ones.epochs = 2;
    let (mz, rz) = train(zeros, &ds);
    let (mo, ro) = train(ones, &ds);
    assert_bit_identical(&mz, &mo, "negatives=0/logic_batch=0 vs 1/1");
    assert_eq!(rz, ro);
}
