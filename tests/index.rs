//! Acceptance tests for the clustered retrieval index and the approx
//! serving tier: exhaustive-probe bit-parity with the exact scan at both
//! working precisions, recall at paper scale while scanning a bounded
//! fraction of the catalog, and reload discipline (index version in
//! lockstep with the model version, torn reloads leaving the old index
//! serving).

use std::path::PathBuf;
use std::sync::Arc;

use logirec_suite::core::io::save_model;
use logirec_suite::core::{train, LogiRec, LogiRecConfig, Precision};
use logirec_suite::data::interactions::Dataset;
use logirec_suite::data::{DatasetSpec, Scale};
use logirec_suite::serve::{
    Client, IndexConfig, ModelSnapshot, Request, ServeContext, ServedBy, Server, ServerConfig,
    WatchConfig,
};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("logirec-index-{name}-{}", std::process::id()))
}

fn dataset() -> Dataset {
    DatasetSpec::ciao(Scale::Tiny).generate(61)
}

fn trained_model(ds: &Dataset) -> LogiRec {
    let cfg = LogiRecConfig { epochs: 2, ..LogiRecConfig::test_config() };
    train(cfg, ds).0
}

/// The exhaustive probe (`nprobe = n_clusters`) must reproduce the exact
/// tier bit for bit — same items, same score bits — for **every** user and
/// at **both** working precisions. This is the property the build-time
/// index canary spot-checks; here it is verified exhaustively.
#[test]
fn exhaustive_probe_matches_exact_top_k_bit_for_bit_at_both_precisions() {
    let ds = dataset();
    let ctx = Arc::new(ServeContext::from_dataset(&ds));
    let model = trained_model(&ds);
    let index_cfg = Some(IndexConfig { clusters: 13, ..IndexConfig::default() });
    for precision in [Precision::F64, Precision::F32] {
        let snap =
            ModelSnapshot::build_with_index(model.clone(), precision, &ctx, "parity", index_cfg)
                .expect("valid snapshot");
        let index = snap.index().expect("index built");
        let mut scratch = Vec::new();
        for u in 0..ds.n_users() {
            for k in [1, 5, 10] {
                let (exact_items, exact_scores) =
                    snap.top_k(u, k, &mut scratch).expect("exact");
                let (items, scores, report) = snap
                    .approx_top_k(u, k, Some(index.clusters()))
                    .expect("in range")
                    .expect("index present");
                assert_eq!(items, exact_items, "{precision} user {u} k {k}: item set differs");
                for ((&v, &s), &es) in items.iter().zip(&scores).zip(&exact_scores) {
                    assert_eq!(
                        s.to_bits(),
                        es.to_bits(),
                        "{precision} user {u} item {v}: score not bit-exact"
                    );
                }
                assert_eq!(report.clusters_pruned, 0, "exhaustive probe must never prune");
            }
        }
    }
}

/// At paper scale (ciao: 5,180 users / 8,836 items) the approx tier must
/// keep recall@10 and recall@20 at or above 0.95 against the exact scan
/// while exactly scoring less than 30% of the catalog — measured, not
/// assumed, via the per-request probe reports.
#[test]
fn paper_scale_recall_stays_high_while_scanning_under_30_percent() {
    let ds = DatasetSpec::ciao(Scale::Paper).generate(9);
    let ctx = Arc::new(ServeContext::from_dataset(&ds));
    let model = LogiRec::new(LogiRecConfig { dim: 16, ..LogiRecConfig::test_config() }, &ds);
    let snap = ModelSnapshot::build_with_index(
        model,
        Precision::F64,
        &ctx,
        "paper",
        Some(IndexConfig::default()),
    )
    .expect("valid snapshot");

    let n_users = ds.n_users();
    let sample = 120usize;
    let stride = (n_users / sample).max(1);
    let mut scratch = Vec::new();
    for k in [10usize, 20] {
        let (mut hits, mut total, mut scanned, mut users) = (0usize, 0usize, 0.0f64, 0usize);
        for u in (0..n_users).step_by(stride).take(sample) {
            let (exact_items, _) = snap.top_k(u, k, &mut scratch).expect("exact");
            let (approx_items, _, report) =
                snap.approx_top_k(u, k, None).expect("in range").expect("index");
            hits += exact_items.iter().filter(|v| approx_items.contains(v)).count();
            total += exact_items.len();
            scanned += report.scan_fraction();
            users += 1;
        }
        let recall = hits as f64 / total as f64;
        let frac = scanned / users as f64;
        assert!(recall >= 0.95, "recall@{k} {recall:.4} < 0.95 over {users} users");
        assert!(frac < 0.30, "scanned {:.1}% of the catalog at k={k}", 100.0 * frac);
    }
}

/// A hot-swap reload rebuilds the index inside the candidate's validation
/// and stamps it in lockstep with the new model version; a torn file is
/// rejected and the **old** index keeps serving approx responses.
#[test]
fn reload_keeps_index_version_in_lockstep_and_torn_reload_rolls_back() {
    let ds = dataset();
    let model = trained_model(&ds);
    let path = tmp("watch.logirec");
    let _ = std::fs::remove_file(&path);

    let ctx = Arc::new(ServeContext::from_dataset(&ds));
    let index_cfg = Some(IndexConfig { clusters: 11, nprobe: 3, ..IndexConfig::default() });
    let snap =
        ModelSnapshot::build_with_index(model, Precision::F64, &ctx, "initial", index_cfg)
            .expect("valid snapshot");
    let cfg = ServerConfig {
        force_approx: true,
        watch: Some(WatchConfig { path: path.clone(), poll: std::time::Duration::from_secs(3600) }),
        ..ServerConfig::default()
    };
    let server = Server::start(cfg, Arc::clone(&ctx), snap).expect("server starts");

    let live = server.store().get();
    assert_eq!(live.version(), 1);
    assert_eq!(live.index().expect("index").model_version(), 1, "installed in lockstep");

    // Every request is forced through the approx tier and tagged as such.
    let mut client = Client::connect(server.addr()).expect("connect");
    let resp = client
        .recommend(&Request { id: 1, user: 0, k: 5, deadline_ms: Some(10_000) })
        .expect("approx request");
    assert_eq!(resp.served_by, ServedBy::Approx);
    assert_eq!(resp.reason.as_deref(), Some("requested"));
    assert_eq!(resp.model_version, 1);
    let info = resp.approx.expect("approx responses carry their probe config");
    assert_eq!(info.clusters, 11);
    assert!(info.scored > 0 && info.scored <= ds.n_items());

    // A valid new model swaps in; the rebuilt index is stamped with the
    // new version and keeps the same knobs.
    let next = trained_model(&DatasetSpec::ciao(Scale::Tiny).generate(61));
    save_model(&next, &path).expect("save");
    let outcome = server.reload_now();
    assert!(
        matches!(outcome, logirec_suite::serve::ReloadOutcome::Swapped { version: 2 }),
        "{outcome:?}"
    );
    let live = server.store().get();
    assert_eq!(live.version(), 2);
    assert_eq!(live.index().expect("index rebuilt").model_version(), 2, "lockstep after swap");
    assert_eq!(live.index_config(), index_cfg, "reload keeps the index knobs");

    // Tear the file mid-write: the candidate is rejected, version 2 stays
    // live, and its index still serves approx responses.
    let bytes = std::fs::read(&path).expect("read");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
    let outcome = server.reload_now();
    assert!(
        matches!(outcome, logirec_suite::serve::ReloadOutcome::Rejected { .. }),
        "{outcome:?}"
    );
    let live = server.store().get();
    assert_eq!(live.version(), 2, "torn file never went live");
    assert_eq!(live.index().expect("old index").model_version(), 2);
    let resp = client
        .recommend(&Request { id: 2, user: 1, k: 5, deadline_ms: Some(10_000) })
        .expect("approx request after rollback");
    assert_eq!(resp.served_by, ServedBy::Approx);
    assert_eq!(resp.model_version, 2, "old snapshot/index pair keeps serving");

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}
