//! Property tests for the sparse-shard gradient accumulator: sharding a
//! random batch of row updates and merging the shards in fixed tree order
//! must reproduce dense serial accumulation (up to floating-point
//! re-association — the tree changes the order in which a row's
//! contributions are summed, nothing else), and the result must not depend
//! on *how many* shards carry each row.

use logirec_suite::core::{merge_tree, shard_ranges, SparseGrad};
use proptest::prelude::*;

const DIM: usize = 3;
const ROWS: usize = 8;

/// Dense serial reference: apply every `(row, values)` update in order.
fn dense_accumulate(updates: &[(usize, [f64; DIM])]) -> Vec<f64> {
    let mut table = vec![0.0; ROWS * DIM];
    for &(row, vals) in updates {
        for (c, v) in vals.iter().enumerate() {
            table[row * DIM + c] += v;
        }
    }
    table
}

/// Shard the update list exactly like the loss kernels do, accumulate each
/// shard sparsely, tree-merge, and scatter into a dense table.
fn sharded_accumulate(updates: &[(usize, [f64; DIM])]) -> Vec<f64> {
    let shards: Vec<SparseGrad> = shard_ranges(updates.len())
        .into_iter()
        .map(|r| {
            let mut g = SparseGrad::new(DIM);
            for &(row, vals) in &updates[r] {
                g.add(row, &vals);
            }
            g
        })
        .collect();
    let merged = merge_tree(shards).expect("at least one shard");
    let mut table = vec![0.0; ROWS * DIM];
    let mut dense = logirec_suite::linalg::Embedding::zeros(ROWS, DIM);
    merged.scatter_add(&mut dense);
    table.copy_from_slice(dense.as_slice());
    table
}

fn assert_close(a: &[f64], b: &[f64]) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= 1e-12 * (1.0 + y.abs()),
            "flat index {i}: sharded {x} vs dense {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_merged_shards_equal_dense_serial_accumulation(
        raw in prop::collection::vec((0usize..ROWS, -1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 0..400),
    ) {
        let updates: Vec<(usize, [f64; DIM])> =
            raw.iter().map(|&(r, a, b, c)| (r, [a, b, c])).collect();
        if updates.is_empty() {
            prop_assert!(merge_tree(Vec::<SparseGrad>::new()).is_none());
            return Ok(());
        }
        let dense = dense_accumulate(&updates);
        let sharded = sharded_accumulate(&updates);
        assert_close(&sharded, &dense);
    }

    #[test]
    fn merge_is_independent_of_shard_layout(
        raw in prop::collection::vec((0usize..ROWS, -1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 1..200),
        splits in prop::collection::vec(0usize..200, 0..6),
    ) {
        // The *canonical* sharding (shard_ranges) must give the same bits
        // no matter how many threads execute it — that is trivially true
        // (the shards are the same jobs). Here we additionally pin the
        // weaker tolerance contract for arbitrary contiguous layouts:
        // any split of the update list, tree-merged, matches dense serial
        // accumulation within re-association error.
        let updates: Vec<(usize, [f64; DIM])> =
            raw.iter().map(|&(r, a, b, c)| (r, [a, b, c])).collect();
        let mut cuts: Vec<usize> = splits.iter().map(|&s| s % (updates.len() + 1)).collect();
        cuts.push(0);
        cuts.push(updates.len());
        cuts.sort_unstable();
        cuts.dedup();
        let shards: Vec<SparseGrad> = cuts
            .windows(2)
            .map(|w| {
                let mut g = SparseGrad::new(DIM);
                for &(row, vals) in &updates[w[0]..w[1]] {
                    g.add(row, &vals);
                }
                g
            })
            .collect();
        let merged = merge_tree(shards).expect("at least one shard");
        let mut dense = logirec_suite::linalg::Embedding::zeros(ROWS, DIM);
        merged.scatter_add(&mut dense);
        assert_close(dense.as_slice(), &dense_accumulate(&updates));
    }
}

/// Edge case: shards that touched no rows merge away to nothing.
#[test]
fn empty_shards_merge_to_empty() {
    let empties: Vec<SparseGrad> = (0..5).map(|_| SparseGrad::new(DIM)).collect();
    let merged = merge_tree(empties).unwrap();
    assert!(merged.is_empty());
    assert_eq!(merged.nnz(), 0);
}

/// Edge case: the same row touched by every shard accumulates once per
/// shard, exactly.
#[test]
fn duplicate_rows_across_shards_sum_once_per_shard() {
    let shards: Vec<SparseGrad> = (0..7)
        .map(|i| {
            let mut g = SparseGrad::new(DIM);
            g.add(2, &[1.0, 0.5, 0.25]);
            if i % 2 == 0 {
                g.add(5, &[-1.0, 0.0, 1.0]);
            }
            g
        })
        .collect();
    let merged = merge_tree(shards).unwrap();
    assert_eq!(merged.nnz(), 2);
    assert_eq!(merged.get(2).unwrap(), &[7.0, 3.5, 1.75]);
    assert_eq!(merged.get(5).unwrap(), &[-4.0, 0.0, 4.0]);
    assert!(merged.get(0).is_none());
}

/// Edge case: a single-update batch is one shard; merging is the identity.
#[test]
fn single_update_batch_roundtrips() {
    assert_eq!(shard_ranges(1), vec![0..1]);
    let mut g = SparseGrad::new(DIM);
    g.add(3, &[0.1, 0.2, 0.3]);
    let merged = merge_tree(vec![g]).unwrap();
    assert_eq!(merged.nnz(), 1);
    assert_eq!(merged.get(3).unwrap(), &[0.1, 0.2, 0.3]);
}
