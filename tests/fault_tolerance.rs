//! Fault-tolerance acceptance tests: kill-and-resume determinism, corrupted
//! checkpoints, and injected training faults. Every scenario must end in a
//! completed run with finite parameters and a recorded recovery — never a
//! panic or a silently-poisoned model.

use std::path::PathBuf;

use logirec_suite::core::checkpoint;
use logirec_suite::core::faults::{flip_bit, truncate_file, Fault, FaultPlan};
use logirec_suite::core::model::LogiRec;
use logirec_suite::core::{train, LogiRecConfig, RecoveryAction, TrainReport};
use logirec_suite::data::interactions::Dataset;
use logirec_suite::data::{DatasetSpec, Scale, Split};
use logirec_suite::eval::evaluate;
use logirec_suite::hyperbolic::{lorentz, poincare};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("logirec-ft-{name}-{}", std::process::id()))
}

fn base_cfg() -> LogiRecConfig {
    LogiRecConfig {
        epochs: 6,
        eval_every: 2,
        patience: 0,
        mining: true,
        mining_refresh: 2,
        ..LogiRecConfig::test_config()
    }
}

fn dataset() -> Dataset {
    DatasetSpec::ciao(Scale::Tiny).generate(77)
}

fn assert_healthy(model: &LogiRec) {
    assert!(model.all_finite());
    for v in 0..model.items.rows() {
        assert!(poincare::in_ball(model.items.row(v)), "item {v} out of ball");
    }
    for u in 0..model.users.rows() {
        assert!(
            lorentz::on_manifold(model.users.row(u), 1e-6),
            "user {u} off sheet"
        );
    }
}

fn assert_identical(a: &LogiRec, ra: &TrainReport, b: &LogiRec, rb: &TrainReport) {
    assert_eq!(a.tags, b.tags, "tag tables differ");
    assert_eq!(a.items, b.items, "item tables differ");
    assert_eq!(a.users, b.users, "user tables differ");
    assert_eq!(ra.history, rb.history, "training histories differ");
    assert_eq!(ra.best_val_recall10, rb.best_val_recall10);
    assert_eq!(ra.epochs_run, rb.epochs_run);
}

/// The core durability guarantee: training for N epochs straight through is
/// bit-identical to training, "dying", and resuming from a checkpoint — at
/// every possible kill point.
#[test]
fn kill_and_resume_is_bit_identical() {
    let ds = dataset();
    let (full_model, full_report) = train(base_cfg(), &ds);
    assert!(full_report.recoveries.is_empty());

    for kill_after in [2usize, 3, 5] {
        let path = tmp(&format!("resume-{kill_after}"));
        // First life: checkpoint every epoch, "crash" after `kill_after`.
        let mut first = base_cfg();
        first.epochs = kill_after;
        first.checkpoint_every = 1;
        first.checkpoint_path = Some(path.clone());
        let _ = train(first, &ds);

        // Second life: resume and finish the remaining epochs.
        let mut second = base_cfg();
        second.resume_from = Some(path.clone());
        let (resumed_model, resumed_report) = train(second, &ds);

        assert!(
            resumed_report.recoveries.is_empty(),
            "clean resume must not record recoveries: {:?}",
            resumed_report.recoveries
        );
        assert_identical(&full_model, &full_report, &resumed_model, &resumed_report);
        let _ = std::fs::remove_file(&path);
    }
}

/// A checkpoint truncated by a crashed non-atomic writer (or torn disk) is
/// detected by the CRC/length checks; training restarts fresh, records the
/// recovery, and still completes with a healthy model.
#[test]
fn truncated_checkpoint_restarts_fresh() {
    let ds = dataset();
    let path = tmp("truncated");
    let mut first = base_cfg();
    first.epochs = 3;
    first.checkpoint_every = 1;
    first.checkpoint_path = Some(path.clone());
    let _ = train(first, &ds);

    for fraction in [0.0, 0.3, 0.9] {
        let damaged = tmp(&format!("truncated-{}", (fraction * 10.0) as u32));
        std::fs::copy(&path, &damaged).unwrap();
        truncate_file(&damaged, fraction).unwrap();
        assert!(
            checkpoint::load(&damaged).is_err(),
            "truncation to {fraction} must not load"
        );

        let mut cfg = base_cfg();
        cfg.resume_from = Some(damaged.clone());
        let (model, report) = train(cfg, &ds);
        assert_healthy(&model);
        assert_eq!(report.epochs_run, 6, "run must still complete");
        assert!(
            report
                .recoveries
                .iter()
                .any(|r| r.action == RecoveryAction::RestartedFresh),
            "missing RestartedFresh recovery: {:?}",
            report.recoveries
        );
        let _ = std::fs::remove_file(&damaged);
    }
    let _ = std::fs::remove_file(&path);
}

/// A single flipped bit anywhere in the checkpoint must be caught (CRC over
/// the payload, validated header) and survived the same way.
#[test]
fn bit_flipped_checkpoint_restarts_fresh() {
    let ds = dataset();
    let path = tmp("bitflip");
    let mut first = base_cfg();
    first.epochs = 3;
    first.checkpoint_every = 1;
    first.checkpoint_path = Some(path.clone());
    let _ = train(first, &ds);

    for seed in 0..4u64 {
        let damaged = tmp(&format!("bitflip-{seed}"));
        std::fs::copy(&path, &damaged).unwrap();
        flip_bit(&damaged, seed).unwrap();
        assert!(checkpoint::load(&damaged).is_err(), "flip {seed} must not load");

        let mut cfg = base_cfg();
        cfg.resume_from = Some(damaged.clone());
        let (model, report) = train(cfg, &ds);
        assert_healthy(&model);
        assert_eq!(report.epochs_run, 6);
        assert!(
            report
                .recoveries
                .iter()
                .any(|r| r.action == RecoveryAction::RestartedFresh),
            "flip {seed}: {:?}",
            report.recoveries
        );
        let _ = std::fs::remove_file(&damaged);
    }
    let _ = std::fs::remove_file(&path);
}

/// NaN/Inf gradient batches are skipped (not applied), the recovery is
/// recorded, and the final quality stays comparable to a clean run.
#[test]
fn gradient_faults_are_skipped_and_recorded() {
    let ds = dataset();
    let (clean_model, _) = train(base_cfg(), &ds);
    clean_recall_sanity(&clean_model, &ds);
    let clean = evaluate(&clean_model, &ds, Split::Test, &[10], 2).recall_at(10);

    let plan = FaultPlan::new(
        11,
        vec![
            Fault::NanGradient { epoch: 1, step: 0 },
            Fault::InfGradient { epoch: 3, step: 1 },
        ],
    );
    let mut cfg = base_cfg();
    cfg.faults = Some(plan.clone());
    let (model, report) = train(cfg, &ds);

    assert!(plan.exhausted(), "faults never fired: {:?}", plan.fired());
    assert_healthy(&model);
    assert_eq!(report.epochs_run, 6);
    let skipped: Vec<_> = report
        .recoveries
        .iter()
        .filter(|r| matches!(r.action, RecoveryAction::SkippedSteps { .. }))
        .collect();
    assert_eq!(skipped.len(), 2, "one recovery per poisoned epoch: {:?}", report.recoveries);
    assert!(skipped.iter().any(|r| r.epoch == 1));
    assert!(skipped.iter().any(|r| r.epoch == 3));

    let faulted = evaluate(&model, &ds, Split::Test, &[10], 2).recall_at(10);
    assert!(
        faulted >= 0.5 * clean,
        "quality collapsed under gradient faults: {faulted:.4} vs clean {clean:.4}"
    );
}

/// Manifold-escape faults (an item pushed outside the Poincaré ball, a user
/// pushed off the Lorentz sheet) trigger the divergence check: the epoch is
/// rolled back, the LR is halved, and the retried epoch (fault fires once)
/// completes cleanly.
#[test]
fn manifold_escapes_roll_back_with_lr_backoff() {
    let ds = dataset();
    let plan = FaultPlan::new(
        13,
        vec![
            Fault::ItemBoundaryEscape { epoch: 1 },
            Fault::UserOffSheet { epoch: 3 },
        ],
    );
    let mut cfg = base_cfg();
    cfg.faults = Some(plan.clone());
    let (model, report) = train(cfg, &ds);

    assert!(plan.exhausted(), "faults never fired: {:?}", plan.fired());
    assert_healthy(&model);
    assert_eq!(report.epochs_run, 6, "rolled-back epochs must be retried");
    let rollbacks: Vec<_> = report
        .recoveries
        .iter()
        .filter_map(|r| match r.action {
            RecoveryAction::RolledBack { lr_scale } => Some((r.epoch, lr_scale)),
            _ => None,
        })
        .collect();
    assert_eq!(rollbacks, vec![(1, 0.5), (3, 0.25)], "{:?}", report.recoveries);
    assert!(
        report.recoveries.iter().all(|r| !matches!(r.action, RecoveryAction::Aborted)),
        "budget must not be exhausted: {:?}",
        report.recoveries
    );
}

/// When divergence keeps recurring, the budget runs out and training stops
/// at the last healthy state instead of looping forever or returning
/// garbage.
#[test]
fn exhausted_recovery_budget_aborts_at_last_healthy_state() {
    let ds = dataset();
    // An escape at every epoch from 1 on: rollbacks at 1, 2, 3 use up the
    // budget, so the violation at epoch 4 must abort.
    let plan = FaultPlan::new(
        17,
        (1..6).map(|e| Fault::ItemBoundaryEscape { epoch: e }).collect(),
    );
    let mut cfg = base_cfg();
    cfg.max_recoveries = 3;
    cfg.faults = Some(plan.clone());
    let (model, report) = train(cfg, &ds);

    assert_healthy(&model);
    assert_eq!(report.epochs_run, 4, "must stop at the last healthy epoch");
    assert_eq!(
        report
            .recoveries
            .iter()
            .filter(|r| matches!(r.action, RecoveryAction::RolledBack { .. }))
            .count(),
        3
    );
    assert!(matches!(
        report.recoveries.last().map(|r| &r.action),
        Some(RecoveryAction::Aborted)
    ));
    assert!(!plan.exhausted(), "the abort must precede the epoch-5 fault");
}

fn clean_recall_sanity(model: &LogiRec, ds: &Dataset) {
    // Guards the fault-quality comparison against a meaningless baseline.
    let r = evaluate(model, ds, Split::Test, &[10], 2).recall_at(10);
    assert!(r > 0.0, "clean model has zero recall; comparison is vacuous");
}
