//! Property and gradient contracts of the streaming cold-start fold-in
//! (see DESIGN.md "Streaming fold-in & compaction"):
//!
//! * folded rows land on their manifold (hyperboloid for user rows,
//!   Poincaré ball for item rows) to tight tolerance;
//! * every pre-existing parameter stays **byte-identical** through a
//!   fold-in — the frozen-model guarantee;
//! * fold-in is bit-identical across `train_threads` 1/2/8 and
//!   reproducible from a fixed seed (the loop is serial by construction,
//!   so the thread knob must be inert);
//! * the analytic new-row gradient matches central finite differences of
//!   the public objective at both working precisions, in both geometries.

use logirec_suite::core::stream::{
    fold_in_grad_into, fold_in_item, fold_in_objective, fold_in_triplets, fold_in_user,
    FoldInOptions,
};
use logirec_suite::core::{train, Geometry, LogiRec, LogiRecConfig};
use logirec_suite::data::{Dataset, DatasetSpec, Scale};
use logirec_suite::hyperbolic::{lorentz, poincare};
use logirec_suite::linalg::Scalar;

fn setup() -> (LogiRec, Dataset) {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(71);
    let cfg = LogiRecConfig { epochs: 3, eval_every: 0, ..LogiRecConfig::test_config() };
    let (mut m, _) = train(cfg, &ds);
    m.propagate(&ds.train);
    (m, ds)
}

/// Folded rows satisfy their manifold constraint to tolerance, in both the
/// base tables and the served final tables.
#[test]
fn folded_rows_satisfy_the_manifold_constraints() {
    let (mut m, ds) = setup();
    let opts = FoldInOptions::for_config(&m.cfg);

    let user_pos: Vec<usize> = ds.train.items_of(3).to_vec();
    let u = fold_in_user(&mut m, &user_pos, &opts).expect("fold in user");
    assert!(
        lorentz::on_manifold(m.users.row(u.id), 1e-9),
        "folded user base row off the hyperboloid"
    );
    assert!(
        lorentz::on_manifold(m.state().user_final.row(u.id), 1e-8),
        "folded user final off the hyperboloid"
    );

    let item_pos = vec![0usize, 3, 11];
    let v = fold_in_item(&mut m, &item_pos, &opts).expect("fold in item");
    assert!(poincare::in_ball(m.items.row(v.id)), "folded item base row outside the ball");
    assert!(
        lorentz::on_manifold(m.state().item_final.row(v.id), 1e-8),
        "folded item final off the hyperboloid"
    );
}

/// The frozen-model guarantee: a fold-in appends exactly one row and
/// leaves every pre-existing byte — parameters *and* propagated finals —
/// untouched.
#[test]
fn fold_in_leaves_every_preexisting_byte_identical() {
    let (mut m, ds) = setup();
    let users_before = m.users.as_slice().to_vec();
    let items_before = m.items.as_slice().to_vec();
    let tags_before = m.tags.as_slice().to_vec();
    let user_final_before = m.state().user_final.as_slice().to_vec();
    let item_final_before = m.state().item_final.as_slice().to_vec();

    let opts = FoldInOptions::for_config(&m.cfg);
    let positives: Vec<usize> = ds.train.items_of(5).to_vec();
    let report = fold_in_user(&mut m, &positives, &opts).expect("fold in");
    assert_eq!(report.id, ds.n_users());
    assert_eq!(m.users.rows(), ds.n_users() + 1, "exactly one row appended");

    let bit_eq = |a: &[f64], b: &[f64]| {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    };
    assert!(bit_eq(&m.users.as_slice()[..users_before.len()], &users_before));
    assert!(bit_eq(m.items.as_slice(), &items_before), "item table must not move");
    assert!(bit_eq(m.tags.as_slice(), &tags_before), "tag table must not move");
    assert!(
        bit_eq(&m.state().user_final.as_slice()[..user_final_before.len()], &user_final_before),
        "pre-existing user finals must not move"
    );
    assert!(
        bit_eq(m.state().item_final.as_slice(), &item_final_before),
        "item finals must not move"
    );
}

/// `train_threads` must be inert for fold-in (the loop is serial), and a
/// fixed options seed must reproduce the row bit for bit; a different seed
/// draws different negatives and lands elsewhere.
#[test]
fn fold_in_is_bit_identical_across_thread_counts_and_reproducible_from_seed() {
    let (base, ds) = setup();
    let positives: Vec<usize> = ds.train.items_of(7).to_vec();
    let opts = FoldInOptions::for_config(&base.cfg);

    let fold = |threads: usize, opts: &FoldInOptions| {
        let mut m = base.clone();
        m.cfg.train_threads = threads;
        let report = fold_in_user(&mut m, &positives, opts).expect("fold in");
        let row: Vec<u64> = m.users.row(report.id).iter().map(|x| x.to_bits()).collect();
        (row, report)
    };

    let (row1, rep1) = fold(1, &opts);
    for threads in [2usize, 8] {
        let (row, rep) = fold(threads, &opts);
        assert_eq!(row, row1, "train_threads={threads} changed the folded row bits");
        assert_eq!(rep, rep1, "train_threads={threads} changed the report");
    }

    // Same seed, fresh run: bit-identical. Different seed: different row.
    let (again, _) = fold(1, &opts);
    assert_eq!(again, row1, "fixed seed must reproduce the row");
    let (other, _) = fold(1, &FoldInOptions { seed: opts.seed + 1, ..opts.clone() });
    assert_ne!(other, row1, "a different seed must draw different negatives");
}

/// Central-difference check of the fold-in gradient at one precision and
/// geometry: perturb each probed ambient coordinate of the candidate row,
/// re-evaluate the public objective, and compare slopes.
fn check_fold_in_fd<S: Scalar>(m: &LogiRec<S>, geometry: Geometry, h: f64, tol: f64) {
    let finals = &m.state().item_final;
    let positives = [1usize, 4, 9];
    let triplets = fold_in_triplets(&positives, finals.rows(), 4, 99);
    assert!(!triplets.is_empty());
    // Probe at the first positive's final — a realistic on-manifold point
    // near the data; FD perturbs ambient coordinates, matching the ambient
    // gradient `fold_in_grad_into` reports.
    let x: Vec<S> = finals.row(positives[0]).to_vec();
    let mut gx = vec![S::ZERO; x.len()];
    let loss = fold_in_grad_into(geometry, &x, finals, &triplets, 1.0, &mut gx);
    assert!(loss > 0.0, "{geometry:?}: hinge inactive, the FD check would be vacuous");
    let mut checked = 0;
    for col in 0..x.len().min(4) {
        let mut xp = x.clone();
        xp[col] += S::from_f64(h);
        let fp = fold_in_objective(geometry, &xp, finals, &triplets, 1.0);
        let mut xm = x.clone();
        xm[col] -= S::from_f64(h);
        let fm = fold_in_objective(geometry, &xm, finals, &triplets, 1.0);
        let num = (fp - fm) / (2.0 * h);
        let ana = gx[col].to_f64();
        assert!(
            (num - ana).abs() < tol * (1.0 + num.abs()),
            "{geometry:?} grad[{col}]: numeric {num} vs analytic {ana}"
        );
        checked += 1;
    }
    assert!(checked >= 4);
}

#[test]
fn fold_in_gradient_matches_finite_differences_f64() {
    let (m, _) = setup();
    check_fold_in_fd(&m, Geometry::Hyperbolic, 1e-6, 1e-4);
}

#[test]
fn fold_in_gradient_matches_finite_differences_f32() {
    let (m, ds) = setup();
    let mut m32 = m.cast::<f32>();
    m32.propagate(&ds.train);
    // f32 arithmetic leaves ~1e-3 of noise in a 1e-2 central difference.
    check_fold_in_fd(&m32, Geometry::Hyperbolic, 1e-2, 5e-2);
}

#[test]
fn fold_in_gradient_matches_finite_differences_euclidean() {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(71);
    let cfg = LogiRecConfig {
        geometry: Geometry::Euclidean,
        epochs: 2,
        eval_every: 0,
        ..LogiRecConfig::test_config()
    };
    let (mut m, _) = train(cfg, &ds);
    m.propagate(&ds.train);
    check_fold_in_fd(&m, Geometry::Euclidean, 1e-6, 1e-4);
}
