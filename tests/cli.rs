//! End-to-end tests of the `logirec` CLI binary: generate → train →
//! evaluate → recommend through real process invocations.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_logirec"))
}

fn work_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("logirec-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn full_cli_workflow() {
    let dir = work_dir("workflow");
    let data = dir.join("data");
    let model = dir.join("model.bin");

    let out = bin()
        .args(["generate", "--dataset", "ciao", "--scale", "tiny", "--seed", "3", "--out"])
        .arg(&data)
        .output()
        .expect("run generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(data.join("interactions.tsv").exists());
    assert!(data.join("taxonomy.tsv").exists());
    assert!(data.join("item_tags.tsv").exists());

    let out = bin()
        .args(["train", "--data"])
        .arg(&data)
        .args(["--model"])
        .arg(&model)
        .args(["--epochs", "4", "--dim", "8"])
        .output()
        .expect("run train");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());

    let out = bin()
        .args(["evaluate", "--data"])
        .arg(&data)
        .args(["--model"])
        .arg(&model)
        .output()
        .expect("run evaluate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Recall@10"), "unexpected output: {text}");

    let out = bin()
        .args(["recommend", "--data"])
        .arg(&data)
        .args(["--model"])
        .arg(&model)
        .args(["--user", "1", "--k", "3"])
        .output()
        .expect("run recommend");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit())).count(), 3);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_reports_errors_cleanly() {
    // Unknown command.
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing required flag.
    let out = bin().args(["train", "--model", "/tmp/x"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --data"));

    // Out-of-range user.
    let dir = work_dir("errors");
    let data = dir.join("data");
    let model = dir.join("m.bin");
    assert!(bin()
        .args(["generate", "--dataset", "ciao", "--scale", "tiny", "--out"])
        .arg(&data)
        .status()
        .expect("generate")
        .success());
    assert!(bin()
        .args(["train", "--data"])
        .arg(&data)
        .arg("--model")
        .arg(&model)
        .args(["--epochs", "1", "--dim", "8"])
        .status()
        .expect("train")
        .success());
    let out = bin()
        .args(["recommend", "--data"])
        .arg(&data)
        .arg("--model")
        .arg(&model)
        .args(["--user", "999999"])
        .output()
        .expect("recommend");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
    let _ = std::fs::remove_dir_all(&dir);
}
