//! Integration coverage of the baseline registry: all 13 methods train on
//! a shared benchmark through the uniform interface, beat random ranking,
//! and are reproducible.

use logirec_suite::baselines::{train_method, BaselineConfig, Method};
use logirec_suite::data::{DatasetSpec, Scale, Split};
use logirec_suite::eval::{evaluate, Ranker};
use logirec_suite::linalg::SplitMix64;

fn cfg() -> BaselineConfig {
    BaselineConfig { dim: 16, epochs: 6, layers: 2, ..BaselineConfig::default() }
}

#[test]
fn all_baselines_beat_random_ranking() {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(31);
    // Random ranking expectation.
    let mut rng = SplitMix64::new(99);
    let noise: Vec<f64> = (0..ds.n_items()).map(|_| rng.next_f64()).collect();
    let random = |_u: usize, out: &mut [f64]| out.copy_from_slice(&noise);
    let random_r20 = evaluate(&random, &ds, Split::Test, &[20], 2).recall_at(20);

    for method in Method::all() {
        let model = train_method(method, &method.tuned(&cfg()), &ds);
        let r20 = evaluate(&model, &ds, Split::Test, &[20], 2).recall_at(20);
        assert!(
            r20 > random_r20,
            "{} ({r20:.4}) should beat random ({random_r20:.4})",
            method.label()
        );
    }
}

#[test]
fn baseline_training_is_deterministic() {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(32);
    for method in [Method::Bprmf, Method::Hgcf, Method::Agcn] {
        let a = train_method(method, &cfg(), &ds);
        let b = train_method(method, &cfg(), &ds);
        let mut sa = vec![0.0; ds.n_items()];
        let mut sb = vec![0.0; ds.n_items()];
        a.score_user(3, &mut sa);
        b.score_user(3, &mut sb);
        assert_eq!(sa, sb, "{} not deterministic", method.label());
    }
}

#[test]
fn tag_based_methods_use_tag_information() {
    // Regenerate the same interactions but strip the tag structure down to
    // a single tag: tag-aware methods should do no better (usually worse)
    // than with the real taxonomy.
    let ds = DatasetSpec::cd(Scale::Tiny).generate(33);
    let agcn_real = train_method(Method::Agcn, &cfg(), &ds);
    let real = evaluate(&agcn_real, &ds, Split::Test, &[20], 2).recall_at(20);

    let mut stripped = ds.clone();
    for tags in &mut stripped.item_tags {
        *tags = vec![0];
    }
    let agcn_stripped = train_method(Method::Agcn, &cfg(), &stripped);
    let flat = evaluate(&agcn_stripped, &stripped, Split::Test, &[20], 2).recall_at(20);
    assert!(
        real >= flat * 0.95,
        "informative tags should not hurt AGCN: real {real:.4} vs stripped {flat:.4}"
    );
}

#[test]
fn tuned_configs_only_change_learning_rate() {
    let base = cfg();
    for method in Method::all() {
        let tuned = method.tuned(&base);
        assert_eq!(tuned.dim, base.dim);
        assert_eq!(tuned.epochs, base.epochs);
        assert!((tuned.lr - method.tuned_lr()).abs() < 1e-15);
    }
}
