//! Logical relation mining insights on a CD-store benchmark: who are the
//! consistent users, how granularity correlates with preference breadth
//! (the Fig. 5b trend), and how the mining weights α redistribute the
//! optimization effort.
//!
//! ```text
//! cargo run --release --example mining_insights
//! ```

use logirec_suite::core::mining::{
    combine_weights, consistency_weights, granularity_weights, user_profiles,
};
use logirec_suite::core::{train, LogiRecConfig};
use logirec_suite::data::{DatasetSpec, Scale};

fn main() {
    let dataset = DatasetSpec::cd(Scale::Tiny).generate(11);
    let cfg = LogiRecConfig {
        dim: 16,
        epochs: 15,
        eval_every: 0,
        patience: 0,
        ..LogiRecConfig::default()
    };
    let (model, _) = train(cfg, &dataset);

    let con = consistency_weights(&dataset);
    let gr = granularity_weights(&model, dataset.n_users());
    let alpha = combine_weights(&con, &gr, 0.1);
    let profiles = user_profiles(&dataset, &con, &gr, &alpha, 3);

    // Most and least consistent users with their tag profiles.
    let mut by_con: Vec<usize> = (0..dataset.n_users()).collect();
    by_con.sort_by(|&a, &b| con[b].partial_cmp(&con[a]).expect("finite"));
    println!("most consistent users:");
    for &u in by_con.iter().take(3) {
        describe(&dataset, &profiles[u]);
    }
    println!("least consistent users:");
    for &u in by_con.iter().rev().take(3) {
        describe(&dataset, &profiles[u]);
    }

    // The Fig. 5(b) trend: granularity (distance to origin) vs number of
    // interacted tag types, in three breadth buckets.
    let mut buckets: Vec<(usize, f64, usize)> = vec![(0, 0.0, 0); 3];
    for (u, &g) in gr.iter().enumerate() {
        let types = dataset.user_tag_type_count(u);
        let b = if types <= 4 {
            0
        } else if types <= 9 {
            1
        } else {
            2
        };
        buckets[b].0 += types;
        buckets[b].1 += g;
        buckets[b].2 += 1;
    }
    println!("\ngranularity vs preference breadth (Fig. 5b trend):");
    for (label, (_, sum, n)) in ["1-4 tag types", "5-9 tag types", "10+ tag types"]
        .iter()
        .zip(&buckets)
    {
        if *n > 0 {
            println!("  {label}: mean d(o, u) = {:.4} over {n} users", sum / *n as f64);
        }
    }

    // Where does the optimization effort go?
    let mass_top: f64 = by_con.iter().take(dataset.n_users() / 4).map(|&u| alpha[u]).sum();
    let total: f64 = alpha.iter().sum();
    println!(
        "\nthe most consistent 25% of users receive {:.1}% of the gradient mass",
        100.0 * mass_top / total
    );
}

fn describe(dataset: &logirec_suite::data::Dataset, p: &logirec_suite::core::mining::UserProfile) {
    let tags: Vec<String> = p
        .top_tags
        .iter()
        .map(|&(t, c)| format!("<{}> x{c}", dataset.taxonomy.name(t)))
        .collect();
    println!(
        "  user {:>3}: CON {:.2} GR {:.2} alpha {:.2} | {}",
        p.user,
        p.consistency,
        p.granularity,
        p.alpha,
        tags.join("; ")
    );
}
