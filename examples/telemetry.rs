//! Telemetry: trace a training run to JSONL, inspect the span/metric
//! summary, and validate the trace — the library-side equivalent of
//! `logirec train --trace-json out.jsonl --metrics-summary`.
//!
//! ```text
//! cargo run --release --example telemetry
//! ```

use logirec_suite::core::{train, LogiRecConfig};
use logirec_suite::data::{DatasetSpec, Scale};
use logirec_suite::obs::{validate_trace_file, Telemetry};

fn main() {
    let trace = std::env::temp_dir().join("logirec-example-trace.jsonl");

    // 1. One telemetry handle, streamed to a JSONL file. The same handle
    //    is cloned into the config; `Telemetry::disabled()` (the default)
    //    would make every instrumentation call a no-op instead.
    let tel = Telemetry::builder().jsonl(&trace).build().expect("trace file");
    let dataset = DatasetSpec::ciao(Scale::Tiny).generate(42);
    let cfg = LogiRecConfig {
        dim: 16,
        epochs: 6,
        eval_every: 2,
        patience: 0,
        telemetry: tel.clone(),
        ..LogiRecConfig::default()
    };
    let (_, report) = train(cfg, &dataset);
    tel.finish(); // flush metric events + the file buffer

    // 2. The in-memory side: per-span-kind timing aggregates and every
    //    counter/gauge/histogram, rendered as the --metrics-summary table.
    print!("{}", tel.summary());

    // 3. The on-disk side: a well-formed trace whose span tree mirrors
    //    the run (same checks as the `trace_check` binary).
    let stats = validate_trace_file(&trace).expect("trace validates");
    println!(
        "trace {}: {} events, {} spans; {} epoch spans for {} epochs run",
        trace.display(),
        stats.lines,
        stats.spans,
        stats.span_count("epoch"),
        report.epochs_run
    );

    // 4. Ad-hoc instrumentation uses the same handle.
    let mut span = tel.span("analysis");
    span.field("users", dataset.n_users() as u64);
    let slow_users = (0..dataset.n_users())
        .filter(|&u| dataset.train.items_of(u).len() > 20)
        .count();
    span.close();
    tel.counter("example.heavy_users").incr();
    println!("{slow_users} users with >20 training interactions");

    let _ = std::fs::remove_file(&trace);
}
