//! Logic-consistent inference: executing the paper's Fig. 1 narrative
//! ("skip items under <Classical> when recommending for Linda") with the
//! *mined* relations — the exclusions implied by the learned tag geometry
//! rather than the raw taxonomy records.
//!
//! The example trains LogiRec++ on a CD-store benchmark, builds the
//! [`LogicFilter`], and reports (1) how many user–item pairs a hard
//! filter could skip (the paper's "significant reductions on computation
//! cost"), (2) that accuracy is preserved, and (3) a before/after look at
//! one user's recommendation list.
//!
//! ```text
//! cargo run --release --example logic_filtering
//! ```

use logirec_suite::core::{train, FilteredRanker, LogiRecConfig, LogicFilter};
use logirec_suite::data::{DatasetSpec, Scale, Split};
use logirec_suite::eval::{evaluate, Ranker};

fn main() {
    let dataset = DatasetSpec::cd(Scale::Tiny).generate(23);
    let cfg = LogiRecConfig {
        dim: 16,
        epochs: 40,
        lambda: 2.0,
        eval_every: 0,
        patience: 0,
        ..LogiRecConfig::default()
    };
    let (model, _) = train(cfg, &dataset);

    // Build the filter from the learned geometry. The exclusion hinge
    // drives violating pairs exactly to the disjointness boundary, so a
    // small negative margin ("separated or barely overlapping") matches
    // the trained equilibrium.
    let filter = LogicFilter::build(&model, &dataset, -0.15, 1_000.0);
    println!(
        "hard logic filtering could skip {:.1}% of all user-item scorings",
        100.0 * filter.skip_fraction(&dataset.item_tags)
    );

    let plain = evaluate(&model, &dataset, Split::Test, &[10], 4);
    let ranker = FilteredRanker { model: &model, filter: &filter, item_tags: &dataset.item_tags };
    let filtered = evaluate(&ranker, &dataset, Split::Test, &[10], 4);
    println!(
        "Recall@10: plain {:.4} vs logic-filtered {:.4}",
        plain.recall_at(10),
        filtered.recall_at(10)
    );

    // Show the effect on one user.
    let user = (0..dataset.n_users())
        .max_by_key(|&u| {
            (0..dataset.n_items())
                .filter(|&v| filter.item_excluded(u, &dataset.item_tags[v]))
                .count()
        })
        .expect("users exist");
    let excluded = (0..dataset.n_items())
        .filter(|&v| filter.item_excluded(user, &dataset.item_tags[v]))
        .count();
    println!(
        "user {user}: {excluded}/{} items are logically excluded by their profile",
        dataset.n_items()
    );
    let mut scores = vec![0.0; dataset.n_items()];
    ranker.score_user(user, &mut scores);
    for &v in dataset.train.items_of(user) {
        scores[v] = f64::NEG_INFINITY;
    }
    let top = logirec_suite::eval::ranking::top_k_indices(&scores, 5);
    println!("filtered top-5 for user {user}:");
    for v in top {
        let tags: Vec<&str> =
            dataset.item_tags[v].iter().map(|&t| dataset.taxonomy.name(t)).collect();
        let kept = !filter.item_excluded(user, &dataset.item_tags[v]);
        println!("  item {v} [{}] {}", tags.join(","), if kept { "" } else { "(excluded!)" });
        assert!(kept, "an excluded item must never surface in the top-k");
    }
}
