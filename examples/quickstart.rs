//! Quickstart: generate a benchmark, train LogiRec++, evaluate, recommend.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use logirec_suite::core::{train, LogiRecConfig};
use logirec_suite::data::{DatasetSpec, Scale, Split};
use logirec_suite::eval::{evaluate, Ranker};

fn main() {
    // 1. A small Ciao-like benchmark: users, items, a 4-level tag taxonomy,
    //    and the logical relations extracted from it.
    let dataset = DatasetSpec::ciao(Scale::Tiny).generate(42);
    println!(
        "dataset: {} users, {} items, {} interactions, {} tags",
        dataset.n_users(),
        dataset.n_items(),
        dataset.n_interactions(),
        dataset.n_tags()
    );
    let (mem, hie, ex) = dataset.relations.counts();
    println!("logical relations: {mem} membership, {hie} hierarchy, {ex} exclusion");

    // 2. Train LogiRec++ (mining on) with light settings.
    let cfg = LogiRecConfig {
        dim: 16,
        epochs: 10,
        eval_every: 0,
        patience: 0,
        ..LogiRecConfig::default()
    };
    let (model, report) = train(cfg, &dataset);
    println!(
        "trained {} epochs; final rank loss {:.4}",
        report.epochs_run,
        report.history.last().expect("history").rank_loss
    );

    // 3. Evaluate with full (unsampled) ranking on the temporal test split.
    let res = evaluate(&model, &dataset, Split::Test, &[10, 20], 4);
    println!(
        "test Recall@10 = {:.4}, Recall@20 = {:.4}, NDCG@10 = {:.4}",
        res.recall_at(10),
        res.recall_at(20),
        res.ndcg_at(10)
    );

    // 4. Recommend for one user: rank all items, mask the training history.
    let user = 0;
    let mut scores = vec![0.0; dataset.n_items()];
    model.score_user(user, &mut scores);
    for &v in dataset.train.items_of(user) {
        scores[v] = f64::NEG_INFINITY;
    }
    let top = logirec_suite::eval::ranking::top_k_indices(&scores, 5);
    println!("top-5 for user {user}:");
    for v in top {
        let tags: Vec<&str> =
            dataset.item_tags[v].iter().map(|&t| dataset.taxonomy.name(t)).collect();
        println!("  item {v} (tags: {})", tags.join(", "));
    }
}
