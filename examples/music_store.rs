//! The paper's Fig. 1 scenario as a runnable program: a music store with
//! an explicit tag taxonomy, users like Lisa/Linda (consistent rock fans)
//! and Tom (diverse), and logic-constrained recommendations.
//!
//! The example builds the taxonomy by hand, synthesizes interactions that
//! match the story, trains LogiRec++, and then demonstrates:
//! * recommendations for rock fans avoid `<Classical>` items (exclusion);
//! * tag regions nest with the hierarchy (a child ball inside its parent);
//! * the consistent user gets a higher mining weight than the diverse one.
//!
//! ```text
//! cargo run --release --example music_store
//! ```

use logirec_suite::core::mining::{combine_weights, consistency_weights, granularity_weights};
use logirec_suite::core::{train, LogiRecConfig};
use logirec_suite::data::interactions::{temporal_split, Dataset};
use logirec_suite::eval::Ranker;
use logirec_suite::hyperbolic::Ball;
use logirec_suite::linalg::SplitMix64;
use logirec_suite::taxonomy::{ExclusionRule, LogicalRelations, Taxonomy};

fn main() {
    // Taxonomy from Fig. 1 (ids in comments).
    let taxonomy = Taxonomy::from_parents(vec![
        ("Rock".into(), None),                       // 0
        ("Classical".into(), None),                  // 1
        ("Punk Rock".into(), Some(0)),               // 2
        ("Alternative Rock".into(), Some(0)),        // 3
        ("Baroque".into(), Some(1)),                 // 4
        ("Ballets & Dances".into(), Some(1)),        // 5
        ("British Alternative".into(), Some(3)),     // 6
        ("American Alternative".into(), Some(3)),    // 7
    ]);

    // 40 items: 10 per leaf genre.
    let leaf_tags = [2usize, 6, 7, 4, 5];
    let mut item_tags: Vec<Vec<usize>> = Vec::new();
    for &t in &leaf_tags {
        for _ in 0..8 {
            item_tags.push(vec![t]);
        }
    }
    let n_items = item_tags.len();
    let items_of_tag = |t: usize| -> Vec<usize> {
        (0..n_items)
            .filter(|&v| item_tags[v].contains(&t) || taxonomy.is_ancestor(t, item_tags[v][0]))
            .collect()
    };

    // Users: 30 rock fans (consistent), 30 classical fans, 20 diverse Toms.
    let mut rng = SplitMix64::new(7);
    let mut events = Vec::new();
    let n_users = 80;
    for u in 0..n_users {
        let pool: Vec<usize> = if u < 30 {
            items_of_tag(0) // Rock subtree
        } else if u < 60 {
            items_of_tag(1) // Classical subtree
        } else {
            (0..n_items).collect() // diverse
        };
        for t in 0..12u64 {
            events.push((u, pool[rng.index(pool.len())], t));
        }
    }
    let (train_set, validation, test) = temporal_split(n_users, n_items, &events);
    let relations =
        LogicalRelations::extract(&taxonomy, &item_tags, ExclusionRule::SiblingsWithoutCommonItems);
    let dataset = Dataset {
        name: "music-store".into(),
        train: train_set,
        validation,
        test,
        taxonomy,
        item_tags,
        relations,
    };

    let cfg = LogiRecConfig {
        dim: 16,
        epochs: 150,
        batch_size: 128,
        lambda: 1.0,
        eval_every: 0,
        patience: 0,
        ..LogiRecConfig::default()
    };
    let (model, _) = train(cfg, &dataset);

    // 1. Exclusion respected: a rock fan's top-10 should be rock items.
    let rock_fan = 0usize;
    let mut scores = vec![0.0; dataset.n_items()];
    model.score_user(rock_fan, &mut scores);
    for &v in dataset.train.items_of(rock_fan) {
        scores[v] = f64::NEG_INFINITY;
    }
    let top = logirec_suite::eval::ranking::top_k_indices(&scores, 10);
    let rock_hits = top
        .iter()
        .filter(|&&v| dataset.taxonomy.is_ancestor(0, dataset.item_tags[v][0]))
        .count();
    println!("rock fan's top-10 contains {rock_hits}/10 rock items (exclusion at work)");

    // 2. Hierarchy geometry: <Alternative Rock> region vs its children.
    let parent = Ball::from_center(model.tags.row(3));
    let child = Ball::from_center(model.tags.row(6));
    println!(
        "tag regions: <Alternative Rock> radius {:.3} vs <British Alternative> radius {:.3} \
         (hierarchy margin {:.3}; negative = nested)",
        parent.radius,
        child.radius,
        parent.hierarchy_margin(&child)
    );

    // 3. Mining weights: the consistent rock fan vs a diverse user.
    let con = consistency_weights(&dataset);
    let gr = granularity_weights(&model, dataset.n_users());
    let alpha = combine_weights(&con, &gr, 0.1);
    let diverse = 70usize;
    println!(
        "consistency: rock fan CON = {:.3}, diverse user CON = {:.3}",
        con[rock_fan], con[diverse]
    );
    println!(
        "mining weights: rock fan alpha = {:.3}, diverse user alpha = {:.3}",
        alpha[rock_fan], alpha[diverse]
    );
    assert!(con[rock_fan] >= con[diverse], "consistent user must score higher CON");
}
