//! Mini model comparison through the uniform `Method` registry: trains a
//! representative baseline from each of the paper's four groups next to
//! LogiRec++ on the same benchmark and prints a small leaderboard.
//!
//! ```text
//! cargo run --release --example compare_methods
//! ```

use logirec_suite::baselines::{train_method, BaselineConfig, Method};
use logirec_suite::core::{train, LogiRecConfig};
use logirec_suite::data::{DatasetSpec, Scale, Split};
use logirec_suite::eval::evaluate;

fn main() {
    let dataset = DatasetSpec::ciao(Scale::Tiny).generate(3);
    let mut board: Vec<(String, f64, f64)> = Vec::new();

    // One baseline per group: general, metric, tag-based, graph-based.
    for method in [Method::Bprmf, Method::HyperMl, Method::Agcn, Method::Hrcf] {
        let cfg = method.tuned(&BaselineConfig {
            dim: 16,
            epochs: 10,
            ..BaselineConfig::default()
        });
        let model = train_method(method, &cfg, &dataset);
        let res = evaluate(&model, &dataset, Split::Test, &[10, 20], 4);
        board.push((method.label().to_string(), res.recall_at(10), res.ndcg_at(10)));
    }

    // LogiRec's batched full-graph steps converge more slowly than the
    // per-sample baselines; the experiment harness therefore trains it
    // for twice the epochs with best-validation snapshotting (see
    // logirec-bench::harness), which we mirror here.
    let cfg = LogiRecConfig {
        dim: 16,
        epochs: 20,
        eval_every: 5,
        patience: 0,
        ..LogiRecConfig::default()
    };
    let (model, _) = train(cfg, &dataset);
    let res = evaluate(&model, &dataset, Split::Test, &[10, 20], 4);
    board.push(("LogiRec++".into(), res.recall_at(10), res.ndcg_at(10)));

    board.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("{:<10}   {:>9}   {:>9}", "method", "Recall@10", "NDCG@10");
    for (name, r, n) in &board {
        println!("{name:<10}   {:>9.4}   {:>9.4}", r, n);
    }
}
