#![warn(missing_docs)]

//! Umbrella crate for the LogiRec/LogiRec++ reproduction.
//!
//! This crate hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`); it re-exports every workspace crate so that
//! examples can use one coherent namespace.

pub use logirec_baselines as baselines;
pub use logirec_core as core;
pub use logirec_data as data;
pub use logirec_eval as eval;
pub use logirec_hyperbolic as hyperbolic;
pub use logirec_linalg as linalg;
pub use logirec_obs as obs;
pub use logirec_serve as serve;
pub use logirec_taxonomy as taxonomy;
