//! `index_bench` — the retrieval-index experiment harness behind
//! `results/index.txt`.
//!
//! Sweeps `nprobe` over the clustered hyperbolic index on two catalogs:
//!
//! 1. **paper** — the ciao paper-scale dataset (5,180 users / 8,836 items)
//!    with a propagated model snapshot, the catalog the serving tier
//!    actually sees;
//! 2. **synthetic-100k** — a ≥10× synthetic hyperboloid catalog
//!    (100,000 items), where the approx tier's asymptotics show.
//!
//! Per sweep point it reports mean per-query latency of the exact full
//! scan and the approx search, recall@10/recall@20 against the exact
//! ranking, and the measured scan fraction; the index build time is
//! printed once per catalog.
//!
//! ```text
//! index_bench [--users N] [--seed N]
//! ```

use std::process::ExitCode;
use std::time::Instant;

use logirec_suite::core::{Geometry, LogiRec, LogiRecConfig, Precision};
use logirec_suite::data::{DatasetSpec, Scale};
use logirec_suite::eval::ranking::{top_k_indices, top_k_scored};
use logirec_suite::hyperbolic::lorentz;
use logirec_suite::linalg::{Embedding, SplitMix64};
use logirec_suite::serve::{ClusterIndex, IndexConfig, ModelSnapshot, ServeContext};

fn arg<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let users: usize = arg(&args, "--users", 100);
    let seed: u64 = arg(&args, "--seed", 9);

    paper_sweep(users, seed);
    println!();
    synthetic_sweep(users, seed);
    ExitCode::SUCCESS
}

/// One sweep row: exact vs approx per-query latency, recall, and scan
/// fraction at a fixed `nprobe`.
#[allow(clippy::too_many_arguments)]
fn row(
    nprobe: usize,
    clusters: usize,
    exact_us: f64,
    approx_us: f64,
    recall10: f64,
    recall20: f64,
    scan: f64,
) {
    println!(
        "  nprobe={nprobe:<4} ({:>5.1}% of {clusters} clusters)  exact={exact_us:>8.1}us  \
         approx={approx_us:>8.1}us  speedup={:>5.2}x  recall@10={recall10:.4}  \
         recall@20={recall20:.4}  scanned={:>5.1}%",
        100.0 * nprobe as f64 / clusters as f64,
        exact_us / approx_us.max(0.01),
        100.0 * scan,
    );
}

/// Paper-scale ciao: the snapshot's propagated tables, the serving mask,
/// and the exact tier as the baseline.
fn paper_sweep(users: usize, seed: u64) {
    let t0 = Instant::now();
    let ds = DatasetSpec::ciao(Scale::Paper).generate(seed);
    let ctx = std::sync::Arc::new(ServeContext::from_dataset(&ds));
    let model = LogiRec::new(LogiRecConfig { dim: 16, ..LogiRecConfig::test_config() }, &ds);
    let snap = ModelSnapshot::build_with_index(
        model,
        Precision::F64,
        &ctx,
        "index_bench",
        Some(IndexConfig::default()),
    )
    .expect("snapshot build");
    let index = snap.index().expect("index");
    let clusters = index.clusters();
    println!(
        "catalog: ciao/paper seed {seed} — {} users / {} items, d=16, {} clusters, \
         index build {:.1}ms (setup {:.1}s)",
        ds.n_users(),
        ds.n_items(),
        clusters,
        index.build_us() as f64 / 1e3,
        t0.elapsed().as_secs_f64(),
    );

    let n_users = ds.n_users();
    let stride = (n_users / users).max(1);
    let sample: Vec<usize> = (0..n_users).step_by(stride).take(users).collect();

    // Exact baseline: full scan through the serving path, timed once.
    let mut scratch = Vec::new();
    let t0 = Instant::now();
    let exact20: Vec<Vec<usize>> = sample
        .iter()
        .map(|&u| snap.top_k(u, 20, &mut scratch).expect("exact").0)
        .collect();
    let exact_us = t0.elapsed().as_secs_f64() * 1e6 / sample.len() as f64;

    for nprobe in [1, 2, 4, 8, 12, 16, 24, 32, clusters] {
        let nprobe = nprobe.min(clusters);
        let t0 = Instant::now();
        let mut results = Vec::with_capacity(sample.len());
        for &u in &sample {
            results.push(snap.approx_top_k(u, 20, Some(nprobe)).unwrap().unwrap());
        }
        let approx_us = t0.elapsed().as_secs_f64() * 1e6 / sample.len() as f64;
        let (mut h10, mut h20, mut scan) = (0usize, 0usize, 0.0f64);
        let mut t10 = 0usize;
        let mut t20 = 0usize;
        for ((items, _, report), exact) in results.iter().zip(&exact20) {
            let e10 = &exact[..exact.len().min(10)];
            h10 += e10.iter().filter(|v| items[..items.len().min(10)].contains(v)).count();
            t10 += e10.len();
            h20 += exact.iter().filter(|v| items.contains(v)).count();
            t20 += exact.len();
            scan += report.scan_fraction();
        }
        row(
            nprobe,
            clusters,
            exact_us,
            approx_us,
            h10 as f64 / t10.max(1) as f64,
            h20 as f64 / t20.max(1) as f64,
            scan / sample.len() as f64,
        );
        if nprobe == clusters {
            println!("  (nprobe=clusters is the exhaustive probe: bit-identical to exact)");
        }
    }
}

/// A 100k-item synthetic hyperboloid catalog (≥10× paper scale): raw
/// index search against the raw full scan, no serving mask.
fn synthetic_sweep(users: usize, seed: u64) {
    let n_items = 100_000;
    let dim = 16;
    let t0 = Instant::now();
    let items = hyperboloid(n_items, dim, seed);
    let queries = hyperboloid(users, dim, seed + 1);
    let cfg = IndexConfig::default();
    let index = ClusterIndex::build(&items, Geometry::Hyperbolic, &cfg);
    let clusters = index.clusters();
    println!(
        "catalog: synthetic-100k seed {seed} — {n_items} items, d={dim}, {} clusters, \
         index build {:.1}ms (setup {:.1}s)",
        clusters,
        index.build_us() as f64 / 1e3,
        t0.elapsed().as_secs_f64(),
    );

    // Exact baseline: the full-scan kernel + deterministic selection.
    let mut scores = vec![0.0f64; n_items];
    let t0 = Instant::now();
    let exact20: Vec<Vec<usize>> = (0..queries.rows())
        .map(|q| {
            for (v, s) in scores.iter_mut().enumerate() {
                *s = -lorentz::distance(queries.row(q), items.row(v));
            }
            top_k_indices(&scores, 20)
        })
        .collect();
    let exact_us = t0.elapsed().as_secs_f64() * 1e6 / queries.rows() as f64;
    // Keep the shared selection helper on the record too: identical order.
    let pairs = scores.iter().copied().enumerate();
    assert_eq!(
        top_k_scored(pairs, 20).into_iter().map(|(i, _)| i).collect::<Vec<_>>(),
        *exact20.last().expect("non-empty"),
    );

    for nprobe in [1, 2, 4, 8, 16, 24, 40, 64, 128, clusters] {
        let nprobe = nprobe.min(clusters);
        let t0 = Instant::now();
        let mut results = Vec::with_capacity(queries.rows());
        for q in 0..queries.rows() {
            results.push(index.search(queries.row(q), &items, &[], 20, nprobe));
        }
        let approx_us = t0.elapsed().as_secs_f64() * 1e6 / queries.rows() as f64;
        let (mut h10, mut h20, mut scan) = (0usize, 0usize, 0.0f64);
        let (mut t10, mut t20) = (0usize, 0usize);
        for ((items20, _, report), exact) in results.iter().zip(&exact20) {
            let e10 = &exact[..10];
            h10 += e10.iter().filter(|v| items20[..items20.len().min(10)].contains(v)).count();
            t10 += e10.len();
            h20 += exact.iter().filter(|v| items20.contains(v)).count();
            t20 += exact.len();
            scan += report.scan_fraction();
        }
        row(
            nprobe,
            clusters,
            exact_us,
            approx_us,
            h10 as f64 / t10.max(1) as f64,
            h20 as f64 / t20.max(1) as f64,
            scan / queries.rows() as f64,
        );
        if nprobe == clusters {
            println!("  (nprobe=clusters is the exhaustive probe: bit-identical to exact)");
        }
    }
}

/// A synthetic hyperboloid table: `exp_origin` of small tangents.
fn hyperboloid(n: usize, d: usize, seed: u64) -> Embedding<f64> {
    let mut rng = SplitMix64::new(seed);
    let tangents = Embedding::<f64>::normal(n, d, 0.3, &mut rng);
    let mut out = Embedding::zeros(n, d + 1);
    for i in 0..n {
        lorentz::exp_origin_into(tangents.row(i), out.row_mut(i));
    }
    out
}
