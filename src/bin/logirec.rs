//! `logirec` — command-line interface to the LogiRec++ reproduction.
//!
//! ```text
//! logirec generate --dataset cd --scale small --seed 42 --out data/cd
//! logirec train    --data data/cd --model cd.logirec [--epochs 40] [--no-mining]
//! logirec evaluate --data data/cd --model cd.logirec
//! logirec recommend --data data/cd --model cd.logirec --user 7 --k 10
//! ```
//!
//! `generate` writes a synthetic benchmark as TSV files; `train` fits
//! LogiRec++ (or plain LogiRec with `--no-mining`) and saves the model —
//! `--checkpoint FILE` makes the run durable (checkpoint every epoch, or
//! every N with `--checkpoint-every N`) and `--resume FILE` continues a
//! killed run bit-identically;
//! `evaluate` reports full-ranking Recall/NDCG on the temporal test split;
//! `recommend` prints a user's top-K with tag annotations.

use std::path::PathBuf;
use std::process::ExitCode;

use logirec_suite::core::io::{load_model, save_model};
use logirec_suite::core::{train, LogiRecConfig, Precision};
use logirec_suite::data::{load_dataset_traced, save_dataset_traced, Dataset, DatasetSpec, Scale, Split};
use logirec_suite::eval::{evaluate_traced, Ranker};
use logirec_suite::obs::json::{self, Json};
use logirec_suite::obs::{profile_span_aggs, Telemetry};
use logirec_suite::serve::{
    recommend_with_retry, Client, IndexConfig, ModelSnapshot, Request, RetryPolicy, ServeContext,
    Server, ServerConfig, WatchConfig,
};
use logirec_suite::taxonomy::ExclusionRule;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = Flags::parse(&args[1..]);
    let result = match command.as_str() {
        "generate" => cmd_generate(&flags),
        "train" => cmd_train(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "recommend" => cmd_recommend(&flags),
        "serve" => cmd_serve(&flags),
        "request" => cmd_request(&flags),
        "metrics" => cmd_metrics(&flags),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  logirec generate  --dataset ciao|cd|clothing|book --scale tiny|small|paper --seed N --out DIR
  logirec train     --data DIR --model FILE [--epochs N] [--lambda X] [--dim N] [--no-mining]
                    [--precision f32|f64] [--train-threads N]
                    [--checkpoint FILE [--checkpoint-every N]] [--resume FILE]
  logirec evaluate  --data DIR --model FILE [--threads N] [--precision f32|f64]

precision: f64 (default) is the bit-reproducible double-precision path;
f32 runs the same kernels in single precision (model files stay f64).
  logirec recommend --data DIR --model FILE --user N [--k N]
  logirec serve     --data DIR --model FILE [--addr HOST:PORT] [--deadline-ms N]
                    [--max-inflight N] [--shed-limit N] [--max-k N]
                    [--watch FILE [--watch-poll-ms N]] [--precision f32|f64]
                    [--index-clusters N] [--nprobe N] [--approx]
                    [--approx-deadline-ms N]
  logirec request   --addr HOST:PORT (--user N [--k N] [--deadline-ms N]
                    [--retries N] | --fold-in ID,ID,... [--fold-in-item]
                    [--steps N] [--lr X] | --stats | --metrics | --reload
                    | --shutdown)
  logirec metrics   --addr HOST:PORT

serve: fault-tolerant top-K serving over a line-JSON TCP protocol. Every
request carries a deadline; deadline misses and overload degrade through
the tiers (served_by: exact|approx|fallback|shed), and --watch hot-swaps
validated new models (rolling back to last-good on any validation failure).
--index-clusters builds the clustered retrieval index (0 = auto sqrt(n));
tight-deadline and overloaded requests then serve from it (approx) before
the popularity fallback. --nprobe sets the clusters probed per query
(0 = auto clusters/8), --approx forces every request through the index.

request --fold-in: folds a brand-new user (or item, with --fold-in-item)
into the running server's model from its comma-separated positives and
publishes the grown snapshot as a new model version — the frozen model is
untouched; a rejected fold-in (e.g. divergent --lr) keeps serving the
last-good snapshot. Until a user is folded in, unknown-user requests
degrade to the popularity fallback instead of erroring.

telemetry (generate / train / evaluate / serve):
  --trace-json FILE     stream structured events (spans, metrics, recoveries,
                        health checks) as JSON lines into FILE
  --metrics-summary     print the span/counter/histogram summary table on exit
  --profile             print the span hot-path profile (self-time per span
                        kind, coverage of wall time) on exit

metrics: scrape a running server's Prometheus-style text exposition
(counters, gauges, and latency summaries with p50/p95/p99 quantiles) and
print it decoded to stdout.";

/// Boolean flags (no value argument follows them).
const BOOL_FLAGS: &[&str] = &[
    "no-mining", "metrics-summary", "profile", "stats", "metrics", "reload", "shutdown", "approx",
    "fold-in-item",
];

/// Minimal flag parser: `--key value` pairs plus the boolean flags in
/// [`BOOL_FLAGS`].
struct Flags {
    pairs: Vec<(String, String)>,
    bools: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Self {
        let mut pairs = Vec::new();
        let mut bools = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            if let Some(key) = flag.strip_prefix("--") {
                if BOOL_FLAGS.contains(&key) {
                    bools.push(key.to_string());
                } else if let Some(value) = it.next() {
                    pairs.push((key.to_string(), value.clone()));
                }
            }
        }
        Self { pairs, bools }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.bools.iter().any(|k| k == key)
    }

    /// Builds the telemetry handle requested by `--trace-json` /
    /// `--metrics-summary` / `--profile` (disabled when none is present).
    fn telemetry(&self) -> Result<Telemetry, String> {
        let trace_json = self.get("trace-json");
        if trace_json.is_none() && !self.has("metrics-summary") && !self.has("profile") {
            return Ok(Telemetry::disabled());
        }
        let mut builder = Telemetry::builder();
        if let Some(path) = trace_json {
            builder = builder.jsonl(path);
        }
        builder.build().map_err(|e| format!("cannot open trace file: {e}"))
    }

    /// Flushes `tel` and prints the summary table / profile when requested.
    fn finish_telemetry(&self, tel: &Telemetry) {
        tel.finish();
        if self.has("metrics-summary") {
            print!("{}", tel.summary());
        }
        if self.has("profile") {
            print!("{}", profile_span_aggs(&tel.span_aggs(), tel.elapsed_us()).render(12));
        }
        if let Some(path) = self.get("trace-json") {
            println!("trace written to {path}");
        }
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}\n{USAGE}"))
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v:?}")),
        }
    }
}

fn load(flags: &Flags, tel: &Telemetry) -> Result<Dataset, String> {
    let dir = PathBuf::from(flags.require("data")?);
    load_dataset_traced(&dir, "dataset", ExclusionRule::SiblingsWithoutCommonItems, tel)
        .map_err(|e| e.to_string())
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let name = flags.require("dataset")?;
    let scale_raw = flags.get("scale").unwrap_or("small");
    let scale = Scale::parse(scale_raw).ok_or_else(|| format!("bad --scale {scale_raw:?}"))?;
    let seed: u64 = flags.parse_or("seed", 42)?;
    let out = PathBuf::from(flags.require("out")?);
    let spec = DatasetSpec::by_name(name, scale).ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let tel = flags.telemetry()?;
    let ds = spec.generate_traced(seed, &tel);
    save_dataset_traced(&ds, &out, &tel).map_err(|e| e.to_string())?;
    flags.finish_telemetry(&tel);
    let (m, h, e) = ds.relations.counts();
    println!(
        "wrote {} to {}: {} users, {} items, {} interactions, {} tags \
         ({m} membership / {h} hierarchy / {e} exclusion)",
        name,
        out.display(),
        ds.n_users(),
        ds.n_items(),
        ds.n_interactions(),
        ds.n_tags()
    );
    Ok(())
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let tel = flags.telemetry()?;
    let ds = load(flags, &tel)?;
    let model_path = PathBuf::from(flags.require("model")?);
    let checkpoint_path = flags.get("checkpoint").map(PathBuf::from);
    let precision = parse_precision(flags)?;
    let cfg = LogiRecConfig {
        epochs: flags.parse_or("epochs", 40)?,
        precision,
        lambda: flags.parse_or("lambda", 0.5)?,
        dim: flags.parse_or("dim", 64)?,
        mining: !flags.has("no-mining"),
        seed: flags.parse_or("seed", 2024)?,
        eval_threads: flags.parse_or("threads", default_threads())?,
        train_threads: flags.parse_or("train-threads", default_threads())?,
        checkpoint_every: flags
            .parse_or("checkpoint-every", usize::from(checkpoint_path.is_some()))?,
        checkpoint_path,
        resume_from: flags.get("resume").map(PathBuf::from),
        telemetry: tel.clone(),
        ..LogiRecConfig::default()
    };
    let label = if cfg.mining { "LogiRec++" } else { "LogiRec" };
    println!(
        "training {label} on {} users / {} items for {} epochs (d={}, lambda={}, {})",
        ds.n_users(),
        ds.n_items(),
        cfg.epochs,
        cfg.dim,
        cfg.lambda,
        cfg.precision
    );
    let (model, report) = train(cfg, &ds);
    let mut save_span = tel.span("checkpoint");
    save_span.field("op", "model");
    match save_model(&model, &model_path) {
        Ok(bytes) => save_span.field("bytes", bytes),
        Err(e) => {
            save_span.field("failed", true);
            save_span.close();
            tel.counter("checkpoint.write_failures").incr();
            flags.finish_telemetry(&tel);
            return Err(e.to_string());
        }
    }
    save_span.close();
    flags.finish_telemetry(&tel);
    println!(
        "done in {} epochs; best validation Recall@10: {}",
        report.epochs_run,
        report
            .best_val_recall10
            .map_or_else(|| "n/a".to_string(), |r| format!("{r:.4}"))
    );
    for r in &report.recoveries {
        println!("recovery at epoch {}: {} ({:?})", r.epoch, r.reason, r.action);
    }
    println!("model saved to {}", model_path.display());
    Ok(())
}

fn cmd_evaluate(flags: &Flags) -> Result<(), String> {
    let tel = flags.telemetry()?;
    let ds = load(flags, &tel)?;
    let model_path = PathBuf::from(flags.require("model")?);
    let base_cfg = LogiRecConfig { telemetry: tel.clone(), ..LogiRecConfig::default() };
    let model = load_model(&model_path, base_cfg).map_err(|e| e.to_string())?;
    let threads = flags.parse_or("threads", default_threads())?;
    let precision = parse_precision(flags)?;
    let res = {
        let mut eval_span = tel.span("eval");
        eval_span.field("split", "test");
        eval_span.field("precision", format!("{precision}"));
        // Model files are always f64; --precision f32 narrows the tables
        // and runs propagation + ranking in single precision.
        match precision {
            Precision::F64 => {
                let mut model = model;
                model.propagate(&ds.train);
                evaluate_traced(&model, &ds, Split::Test, &[10, 20], threads, &tel)
            }
            Precision::F32 => {
                let mut model32 = model.cast::<f32>();
                model32.propagate(&ds.train);
                evaluate_traced(&model32, &ds, Split::Test, &[10, 20], threads, &tel)
            }
        }
    };
    flags.finish_telemetry(&tel);
    println!(
        "test: Recall@10 {:.4}  Recall@20 {:.4}  NDCG@10 {:.4}  NDCG@20 {:.4}  ({} users)",
        res.recall_at(10),
        res.recall_at(20),
        res.ndcg_at(10),
        res.ndcg_at(20),
        res.users.len()
    );
    Ok(())
}

fn cmd_recommend(flags: &Flags) -> Result<(), String> {
    let ds = load(flags, &Telemetry::disabled())?;
    let model_path = PathBuf::from(flags.require("model")?);
    let user: usize = flags.require("user")?.parse().map_err(|_| "bad --user".to_string())?;
    if user >= ds.n_users() {
        return Err(format!("user {user} out of range ({} users)", ds.n_users()));
    }
    let k: usize = flags.parse_or("k", 10)?;
    let mut model =
        load_model(&model_path, LogiRecConfig::default()).map_err(|e| e.to_string())?;
    model.propagate(&ds.train);
    let mut scores = vec![0.0; ds.n_items()];
    model.score_user(user, &mut scores);
    for &v in ds.train.items_of(user) {
        scores[v] = f64::NEG_INFINITY;
    }
    let top = logirec_suite::eval::ranking::top_k_indices(&scores, k);
    println!("top-{k} for user {user}:");
    for (rank, &v) in top.iter().enumerate() {
        let tags: Vec<&str> = ds.item_tags[v].iter().map(|&t| ds.taxonomy.name(t)).collect();
        println!("  {:>2}. item {v} [{}]", rank + 1, tags.join(", "));
    }
    Ok(())
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let tel = flags.telemetry()?;
    let ds = load(flags, &tel)?;
    let model_path = PathBuf::from(flags.require("model")?);
    let precision = parse_precision(flags)?;
    let base_cfg = LogiRecConfig { telemetry: tel.clone(), ..LogiRecConfig::default() };
    let model = load_model(&model_path, base_cfg).map_err(|e| e.to_string())?;
    let ctx = std::sync::Arc::new(ServeContext::from_dataset(&ds));
    // Any index flag turns the clustered retrieval index (and with it the
    // approx tier) on; 0 keeps the auto knobs.
    let index_cfg = (flags.get("index-clusters").is_some()
        || flags.get("nprobe").is_some()
        || flags.has("approx"))
    .then_some(IndexConfig {
        clusters: flags.parse_or("index-clusters", 0)?,
        nprobe: flags.parse_or("nprobe", 0)?,
        ..IndexConfig::default()
    });
    let snapshot = ModelSnapshot::build_with_index(
        model,
        precision,
        &ctx,
        model_path.display().to_string(),
        index_cfg,
    )
    .map_err(|e| format!("model failed serving validation: {e}"))?;
    // Struct update keeps this working when the fault-injection feature
    // adds config fields (test builds of the workspace unify features).
    let mut cfg = ServerConfig { telemetry: tel.clone(), ..ServerConfig::default() };
    cfg.addr = flags.get("addr").unwrap_or("127.0.0.1:4860").to_string();
    cfg.max_inflight = flags.parse_or("max-inflight", 8)?;
    cfg.shed_limit = flags.parse_or("shed-limit", 64)?;
    cfg.default_deadline_ms = flags.parse_or("deadline-ms", 250)?;
    cfg.max_k = flags.parse_or("max-k", 100)?;
    cfg.approx_deadline_ms = flags.parse_or("approx-deadline-ms", 25)?;
    cfg.force_approx = flags.has("approx");
    cfg.watch = match flags.get("watch") {
        None => None,
        Some(path) => Some(WatchConfig {
            path: PathBuf::from(path),
            poll: std::time::Duration::from_millis(flags.parse_or("watch-poll-ms", 200)?),
        }),
    };
    let index_banner = snapshot.index().map(|idx| {
        format!(", index {} clusters / nprobe {}", idx.clusters(), idx.nprobe())
    });
    let server = Server::start(cfg, ctx, snapshot).map_err(|e| e.to_string())?;
    println!(
        "serving {} users / {} items on {} ({precision}, deadline {}ms{}); \
         send {{\"shutdown\":true}} to stop",
        ds.n_users(),
        ds.n_items(),
        server.addr(),
        flags.parse_or("deadline-ms", 250u64)?,
        index_banner.unwrap_or_default(),
    );
    server.wait();
    flags.finish_telemetry(&tel);
    Ok(())
}

fn cmd_request(flags: &Flags) -> Result<(), String> {
    let addr: std::net::SocketAddr = flags
        .require("addr")?
        .parse()
        .map_err(|_| "bad --addr (expected HOST:PORT)".to_string())?;
    if let Some(list) = flags.get("fold-in") {
        let positives: Vec<usize> = list
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| s.trim().parse().map_err(|_| format!("bad --fold-in id {s:?}")))
            .collect::<Result<_, _>>()?;
        let steps = match flags.get("steps") {
            None => None,
            Some(v) => Some(v.parse().map_err(|_| format!("bad value for --steps: {v:?}"))?),
        };
        let lr = match flags.get("lr") {
            None => None,
            Some(v) => Some(v.parse().map_err(|_| format!("bad value for --lr: {v:?}"))?),
        };
        let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
        let resp = client
            .fold_in(flags.has("fold-in-item"), &positives, steps, lr)
            .map_err(|e| e.to_string())?;
        match resp.get("fold_in").and_then(Json::as_str) {
            Some("swapped") => println!(
                "fold_in: swapped  entity: {}  new_id: {}  model_version: {}",
                resp.get("entity").and_then(Json::as_str).unwrap_or("?"),
                resp.get("new_id").and_then(Json::as_u64).unwrap_or(0),
                resp.get("model_version").and_then(Json::as_u64).unwrap_or(0),
            ),
            Some("rejected") => println!(
                "fold_in: rejected  reason: {}",
                resp.get("reason").and_then(Json::as_str).unwrap_or("?"),
            ),
            _ => return Err(format!("unexpected fold-in response: {resp:?}")),
        }
        return Ok(());
    }
    if flags.has("stats") || flags.has("metrics") || flags.has("reload") || flags.has("shutdown")
    {
        let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
        let line = if flags.has("stats") {
            "{\"stats\":true}"
        } else if flags.has("metrics") {
            "{\"metrics\":true}"
        } else if flags.has("reload") {
            "{\"reload\":true}"
        } else {
            "{\"shutdown\":true}"
        };
        let resp = client.roundtrip_line(line).map_err(|e| e.to_string())?;
        println!("{resp}");
        return Ok(());
    }
    let req = Request {
        id: flags.parse_or("id", 1)?,
        user: flags.require("user")?.parse().map_err(|_| "bad --user".to_string())?,
        k: flags.parse_or("k", 10)?,
        deadline_ms: match flags.get("deadline-ms") {
            None => None,
            Some(v) => {
                Some(v.parse().map_err(|_| format!("bad value for --deadline-ms: {v:?}"))?)
            }
        },
    };
    let policy = RetryPolicy { attempts: flags.parse_or("retries", 4)?, ..RetryPolicy::default() };
    let (resp, attempts) = recommend_with_retry(addr, &req, &policy).map_err(|e| e.to_string())?;
    println!(
        "served_by: {}{}  model_version: {}  latency_us: {}  attempts: {}",
        resp.served_by,
        resp.reason.as_deref().map_or(String::new(), |r| format!(" ({r})")),
        resp.model_version,
        resp.latency_us,
        attempts,
    );
    for (rank, (v, s)) in resp.items.iter().zip(&resp.scores).enumerate() {
        println!("  {:>2}. item {v}  score {s}", rank + 1);
    }
    Ok(())
}

/// Scrapes a running server's metrics exposition and prints the decoded
/// text document (the `body` of the `{"metrics":true}` response).
fn cmd_metrics(flags: &Flags) -> Result<(), String> {
    let addr: std::net::SocketAddr = flags
        .require("addr")?
        .parse()
        .map_err(|_| "bad --addr (expected HOST:PORT)".to_string())?;
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let resp = client.roundtrip_line("{\"metrics\":true}").map_err(|e| e.to_string())?;
    let j = json::parse(&resp).map_err(|e| format!("bad metrics response: {e}"))?;
    let body = j
        .get("body")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("metrics response lacks a \"body\": {resp}"))?;
    print!("{body}");
    Ok(())
}

fn parse_precision(flags: &Flags) -> Result<Precision, String> {
    match flags.get("precision") {
        None => Ok(Precision::F64),
        Some(v) => Precision::parse(v).ok_or_else(|| {
            format!("bad value for --precision: {v:?} (expected f32 or f64)")
        }),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}
