//! `serve_bench` — load generator for the serving path.
//!
//! Spins up an in-process server on a synthetic dataset and drives it
//! through three phases, reporting p50/p99 latency split by `served_by`
//! and the shed rate under overload:
//!
//! 1. **nominal** — concurrency below `max_inflight`, generous deadlines:
//!    the exact-path baseline;
//! 2. **starved** — every request carries a 0 ms deadline: the degraded
//!    fallback path (no request may error);
//! 3. **overload** — a thundering herd far past `shed_limit`: measures how
//!    the fallback/shed split behaves at saturation (on a single-core
//!    container requests drain too fast for depth to build, so the split
//!    is hardware-dependent);
//! 4. **soft-saturated** — a server pinned to `max_inflight = 0`, so every
//!    request deterministically degrades (to the approx tier when an index
//!    is serving, to fallback otherwise);
//! 5. **hard-saturated** — a server pinned to `shed_limit = 0`, so every
//!    request is deterministically shed: the floor cost of saying no;
//! 6. **approx** — a server carrying the clustered retrieval index with
//!    `force_approx`, so every request exercises the approx tier; also
//!    measures recall@10 of the approx tier against the exact scan on the
//!    served snapshot (deterministic: fixed dataset, model, and index
//!    seeds), printing the line the tier-1 smoke gates on.
//!
//! ```text
//! serve_bench [--scale tiny|small|paper] [--seed N] [--requests N]
//!             [--dim N] [--overload-threads N] [--profile]
//!             [--index-clusters N] [--nprobe N]
//! ```
//!
//! Output is the `results/serve_latency.txt` format: one block per phase.
//! `--profile` additionally runs the servers with telemetry enabled and
//! prints the span hot-path profile (self-time per span kind) at the end.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;

use logirec_suite::core::{LogiRec, LogiRecConfig, Precision};
use logirec_suite::data::{DatasetSpec, Scale};
use logirec_suite::obs::{profile_span_aggs, rss, Telemetry};
use logirec_suite::serve::{
    Client, IndexConfig, ModelSnapshot, Request, ServeContext, ServedBy, Server, ServerConfig,
};

fn arg<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale_raw = arg(&args, "--scale", "small".to_string());
    let Some(scale) = Scale::parse(&scale_raw) else {
        eprintln!("bad --scale {scale_raw:?}");
        return ExitCode::FAILURE;
    };
    let seed: u64 = arg(&args, "--seed", 7);
    let requests: usize = arg(&args, "--requests", 400);
    let dim: usize = arg(&args, "--dim", 32);
    let overload_threads: usize = arg(&args, "--overload-threads", 48);
    let index_clusters: usize = arg(&args, "--index-clusters", 0);
    let nprobe: usize = arg(&args, "--nprobe", 0);
    let profile = args.iter().any(|a| a == "--profile");
    let tel = if profile { Telemetry::enabled() } else { Telemetry::disabled() };

    let ds = DatasetSpec::ciao(scale).generate(seed);
    let cfg = LogiRecConfig { dim, ..LogiRecConfig::test_config() };
    let model = LogiRec::new(cfg, &ds);
    let ctx = Arc::new(ServeContext::from_dataset(&ds));
    let start = |label: &str, max_inflight: usize, shed_limit: usize, index: Option<IndexConfig>| {
        let force_approx = index.is_some();
        let snapshot =
            ModelSnapshot::build_with_index(model.clone(), Precision::F64, &ctx, label, index)
                .unwrap_or_else(|e| {
                    eprintln!("snapshot build failed: {e}");
                    std::process::exit(1);
                });
        let server_cfg = ServerConfig {
            max_inflight,
            shed_limit,
            default_deadline_ms: 1000,
            force_approx,
            telemetry: tel.clone(),
            ..ServerConfig::default()
        };
        Server::start(server_cfg, Arc::clone(&ctx), snapshot).unwrap_or_else(|e| {
            eprintln!("server start failed: {e}");
            std::process::exit(1);
        })
    };
    let server = start("serve_bench", 4, 16, None);
    let addr = server.addr();
    let n_users = ctx.n_users();

    println!(
        "serve_bench: ciao/{scale_raw} seed {seed}, {} users / {} items, d={dim}, \
         max_inflight=4, shed_limit=16",
        n_users,
        ctx.n_items()
    );
    println!();

    // Phase 1: nominal — 2 workers (< max_inflight), generous deadline.
    let lat = run_phase(addr, requests, 2, n_users, Some(1000));
    report("nominal (deadline 1000ms, concurrency 2)", &lat, requests);

    // Phase 2: starved — deadline 0 degrades every request to fallback.
    let lat = run_phase(addr, requests, 2, n_users, Some(0));
    report("starved (deadline 0ms, concurrency 2)", &lat, requests);

    // Phase 3: overload — a herd far past shed_limit.
    let per_thread = (requests / overload_threads).max(4);
    let total = per_thread * overload_threads;
    let lat = run_phase(addr, total, overload_threads, n_users, Some(1000));
    report(
        &format!("overload (deadline 1000ms, concurrency {overload_threads})"),
        &lat,
        total,
    );

    server.shutdown();

    // Phase 4: soft-saturated — max_inflight 0 pins every request to the
    // fallback(overload) tier (no index on this server).
    let soft = start("soft-saturated", 0, 16, None);
    let lat = run_phase(soft.addr(), requests, 2, n_users, Some(1000));
    report("soft-saturated (max_inflight 0, concurrency 2)", &lat, requests);
    soft.shutdown();

    // Phase 5: hard-saturated — shed_limit 0 sheds every request.
    let hard = start("hard-saturated", 0, 0, None);
    let lat = run_phase(hard.addr(), requests, 2, n_users, Some(1000));
    report("hard-saturated (shed_limit 0, concurrency 2)", &lat, requests);
    hard.shutdown();

    // Phase 6: approx — a clustered-index server with force_approx, so
    // every request goes through the retrieval index + exact re-rank.
    let index_cfg =
        IndexConfig { clusters: index_clusters, nprobe, ..IndexConfig::default() };
    let approx = start("approx", 4, 16, Some(index_cfg));
    let lat = run_phase(approx.addr(), requests, 2, n_users, Some(1000));
    report("approx (forced, deadline 1000ms, concurrency 2)", &lat, requests);

    // Recall of the approx tier vs the exact scan, on the very snapshot the
    // phase above served. Deterministic (fixed dataset, model, and index
    // seeds) — this line is what the tier-1 smoke gates on.
    {
        let snap = approx.store().get();
        let index = snap.index().expect("approx server carries an index");
        let sample = n_users.min(200);
        let stride = (n_users / sample).max(1);
        let mut scratch = Vec::new();
        let (mut hits, mut total, mut scanned) = (0usize, 0usize, 0.0f64);
        let mut users = 0usize;
        for u in (0..n_users).step_by(stride).take(sample) {
            let (exact_items, _) = snap.top_k(u, 10, &mut scratch).expect("exact");
            let (approx_items, _, probe) =
                snap.approx_top_k(u, 10, None).expect("in range").expect("index");
            hits += exact_items.iter().filter(|v| approx_items.contains(v)).count();
            total += exact_items.len();
            scanned += probe.scan_fraction();
            users += 1;
        }
        println!(
            "approx recall@10 vs exact: {:.4} (scanned {:.1}% of catalog, clusters={}, \
             nprobe={}, build {:.1}ms, {} users)",
            hits as f64 / total.max(1) as f64,
            100.0 * scanned / users.max(1) as f64,
            index.clusters(),
            index.nprobe(),
            index.build_us() as f64 / 1e3,
            users,
        );
        println!();
    }
    approx.shutdown();

    if profile {
        if let Some(peak) = rss::set_peak_rss_gauge(&tel) {
            println!("peak RSS: {:.1} MiB", peak as f64 / (1024.0 * 1024.0));
        }
        print!("{}", profile_span_aggs(&tel.span_aggs(), tel.elapsed_us()).render(10));
    }
    ExitCode::SUCCESS
}

/// Fires `total` requests from `threads` workers; returns latencies (µs)
/// grouped by `served_by`. Panics if any request errors — the degradation
/// matrix promises valid responses under every load level.
fn run_phase(
    addr: SocketAddr,
    total: usize,
    threads: usize,
    n_users: usize,
    deadline_ms: Option<u64>,
) -> [Vec<u64>; 4] {
    let per_thread = total / threads;
    let mut groups: [Vec<u64>; 4] = std::array::from_fn(|_| Vec::new());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut local: [Vec<u64>; 4] = std::array::from_fn(|_| Vec::new());
                    let mut client = Client::connect(addr).expect("connect");
                    for i in 0..per_thread {
                        let req = Request {
                            id: (t * per_thread + i) as u64,
                            user: (t * 7919 + i * 31) % n_users,
                            k: 10,
                            deadline_ms,
                        };
                        let resp = client.recommend(&req).expect("no request may error");
                        let slot = match resp.served_by {
                            ServedBy::Exact => 0,
                            ServedBy::Approx => 1,
                            ServedBy::Fallback => 2,
                            ServedBy::Shed => 3,
                        };
                        local[slot].push(resp.latency_us);
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            let local = h.join().expect("worker");
            for (g, l) in groups.iter_mut().zip(local) {
                g.extend(l);
            }
        }
    });
    groups
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn report(label: &str, groups: &[Vec<u64>; 4], total: usize) {
    println!("phase: {label}  ({total} requests)");
    for (name, lat) in ["exact", "approx", "fallback", "shed"].iter().zip(groups) {
        if lat.is_empty() {
            continue;
        }
        let mut sorted = lat.clone();
        sorted.sort_unstable();
        println!(
            "  {name:<8} n={:<6} p50={}us  p99={}us  max={}us",
            sorted.len(),
            quantile(&sorted, 0.5),
            quantile(&sorted, 0.99),
            sorted.last().copied().unwrap_or(0),
        );
    }
    let shed_rate = groups[3].len() as f64 / total as f64;
    println!("  shed rate: {:.1}%", 100.0 * shed_rate);
    println!();
}
