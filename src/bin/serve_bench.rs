//! `serve_bench` — load generator for the serving path.
//!
//! Spins up an in-process server on a synthetic dataset and drives it
//! through three phases, reporting p50/p99 latency split by `served_by`
//! and the shed rate under overload:
//!
//! 1. **nominal** — concurrency below `max_inflight`, generous deadlines:
//!    the exact-path baseline;
//! 2. **starved** — every request carries a 0 ms deadline: the degraded
//!    fallback path (no request may error);
//! 3. **overload** — a thundering herd far past `shed_limit`: measures how
//!    the fallback/shed split behaves at saturation (on a single-core
//!    container requests drain too fast for depth to build, so the split
//!    is hardware-dependent);
//! 4. **soft-saturated** — a server pinned to `max_inflight = 0`, so every
//!    request deterministically degrades to fallback(`overload`);
//! 5. **hard-saturated** — a server pinned to `shed_limit = 0`, so every
//!    request is deterministically shed: the floor cost of saying no.
//!
//! ```text
//! serve_bench [--scale tiny|small|paper] [--seed N] [--requests N]
//!             [--dim N] [--overload-threads N] [--profile]
//! ```
//!
//! Output is the `results/serve_latency.txt` format: one block per phase.
//! `--profile` additionally runs the servers with telemetry enabled and
//! prints the span hot-path profile (self-time per span kind) at the end.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;

use logirec_suite::core::{LogiRec, LogiRecConfig, Precision};
use logirec_suite::data::{DatasetSpec, Scale};
use logirec_suite::obs::{profile_span_aggs, rss, Telemetry};
use logirec_suite::serve::{
    Client, ModelSnapshot, Request, ServeContext, ServedBy, Server, ServerConfig,
};

fn arg<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale_raw = arg(&args, "--scale", "small".to_string());
    let Some(scale) = Scale::parse(&scale_raw) else {
        eprintln!("bad --scale {scale_raw:?}");
        return ExitCode::FAILURE;
    };
    let seed: u64 = arg(&args, "--seed", 7);
    let requests: usize = arg(&args, "--requests", 400);
    let dim: usize = arg(&args, "--dim", 32);
    let overload_threads: usize = arg(&args, "--overload-threads", 48);
    let profile = args.iter().any(|a| a == "--profile");
    let tel = if profile { Telemetry::enabled() } else { Telemetry::disabled() };

    let ds = DatasetSpec::ciao(scale).generate(seed);
    let cfg = LogiRecConfig { dim, ..LogiRecConfig::test_config() };
    let model = LogiRec::new(cfg, &ds);
    let ctx = Arc::new(ServeContext::from_dataset(&ds));
    let start = |label: &str, max_inflight: usize, shed_limit: usize| {
        let snapshot = ModelSnapshot::build(model.clone(), Precision::F64, &ctx, label)
            .unwrap_or_else(|e| {
                eprintln!("snapshot build failed: {e}");
                std::process::exit(1);
            });
        let server_cfg = ServerConfig {
            max_inflight,
            shed_limit,
            default_deadline_ms: 1000,
            telemetry: tel.clone(),
            ..ServerConfig::default()
        };
        Server::start(server_cfg, Arc::clone(&ctx), snapshot).unwrap_or_else(|e| {
            eprintln!("server start failed: {e}");
            std::process::exit(1);
        })
    };
    let server = start("serve_bench", 4, 16);
    let addr = server.addr();
    let n_users = ctx.n_users();

    println!(
        "serve_bench: ciao/{scale_raw} seed {seed}, {} users / {} items, d={dim}, \
         max_inflight=4, shed_limit=16",
        n_users,
        ctx.n_items()
    );
    println!();

    // Phase 1: nominal — 2 workers (< max_inflight), generous deadline.
    let lat = run_phase(addr, requests, 2, n_users, Some(1000));
    report("nominal (deadline 1000ms, concurrency 2)", &lat, requests);

    // Phase 2: starved — deadline 0 degrades every request to fallback.
    let lat = run_phase(addr, requests, 2, n_users, Some(0));
    report("starved (deadline 0ms, concurrency 2)", &lat, requests);

    // Phase 3: overload — a herd far past shed_limit.
    let per_thread = (requests / overload_threads).max(4);
    let total = per_thread * overload_threads;
    let lat = run_phase(addr, total, overload_threads, n_users, Some(1000));
    report(
        &format!("overload (deadline 1000ms, concurrency {overload_threads})"),
        &lat,
        total,
    );

    server.shutdown();

    // Phase 4: soft-saturated — max_inflight 0 pins every request to the
    // fallback(overload) tier.
    let soft = start("soft-saturated", 0, 16);
    let lat = run_phase(soft.addr(), requests, 2, n_users, Some(1000));
    report("soft-saturated (max_inflight 0, concurrency 2)", &lat, requests);
    soft.shutdown();

    // Phase 5: hard-saturated — shed_limit 0 sheds every request.
    let hard = start("hard-saturated", 0, 0);
    let lat = run_phase(hard.addr(), requests, 2, n_users, Some(1000));
    report("hard-saturated (shed_limit 0, concurrency 2)", &lat, requests);
    hard.shutdown();

    if profile {
        if let Some(peak) = rss::set_peak_rss_gauge(&tel) {
            println!("peak RSS: {:.1} MiB", peak as f64 / (1024.0 * 1024.0));
        }
        print!("{}", profile_span_aggs(&tel.span_aggs(), tel.elapsed_us()).render(10));
    }
    ExitCode::SUCCESS
}

/// Fires `total` requests from `threads` workers; returns latencies (µs)
/// grouped by `served_by`. Panics if any request errors — the degradation
/// matrix promises valid responses under every load level.
fn run_phase(
    addr: SocketAddr,
    total: usize,
    threads: usize,
    n_users: usize,
    deadline_ms: Option<u64>,
) -> [Vec<u64>; 3] {
    let per_thread = total / threads;
    let mut groups: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut local: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
                    let mut client = Client::connect(addr).expect("connect");
                    for i in 0..per_thread {
                        let req = Request {
                            id: (t * per_thread + i) as u64,
                            user: (t * 7919 + i * 31) % n_users,
                            k: 10,
                            deadline_ms,
                        };
                        let resp = client.recommend(&req).expect("no request may error");
                        let slot = match resp.served_by {
                            ServedBy::Exact => 0,
                            ServedBy::Fallback => 1,
                            ServedBy::Shed => 2,
                        };
                        local[slot].push(resp.latency_us);
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            let local = h.join().expect("worker");
            for (g, l) in groups.iter_mut().zip(local) {
                g.extend(l);
            }
        }
    });
    groups
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn report(label: &str, groups: &[Vec<u64>; 3], total: usize) {
    println!("phase: {label}  ({total} requests)");
    for (name, lat) in ["exact", "fallback", "shed"].iter().zip(groups) {
        if lat.is_empty() {
            continue;
        }
        let mut sorted = lat.clone();
        sorted.sort_unstable();
        println!(
            "  {name:<8} n={:<6} p50={}us  p99={}us  max={}us",
            sorted.len(),
            quantile(&sorted, 0.5),
            quantile(&sorted, 0.99),
            sorted.last().copied().unwrap_or(0),
        );
    }
    let shed_rate = groups[2].len() as f64 / total as f64;
    println!("  shed rate: {:.1}%", 100.0 * shed_rate);
    println!();
}
