//! `replay_bench` — temporal-replay cold-start benchmark.
//!
//! Splits a synthetic benchmark into a warm past and a cold future
//! ([`ReplayScenario`]): the frozen model trains on the warm users only,
//! then the cold users' first 80 % of events (by timestamp) are streamed
//! in — per-user fold-in, followed by one compaction pass over the event
//! log — and the final 20 % are the held-out test items. The matched
//! baseline retrains from scratch on warm + revealed events.
//!
//! Reports cold-start HR@10 / NDCG@10 for the streamed model against the
//! full retrain (the acceptance bound is ≤ 10 % relative deficit after
//! compaction) plus the per-user fold-in latency, and writes the block to
//! `results/replay.txt`.
//!
//! ```text
//! replay_bench [--scale tiny|small|paper] [--seed N] [--dim N]
//!              [--epochs N] [--cold-fraction X] [--threads N] [--out FILE]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use logirec_suite::core::stream::{compact, fold_in_user, CompactionOptions, EventLog, FoldInOptions};
use logirec_suite::core::{train, LogiRecConfig};
use logirec_suite::data::{DatasetSpec, ReplayScenario, Scale, Split};
use logirec_suite::eval::{evaluate, EvalResult};

fn arg<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale_raw = arg(&args, "--scale", "paper".to_string());
    let Some(scale) = Scale::parse(&scale_raw) else {
        eprintln!("bad --scale {scale_raw:?}");
        return ExitCode::FAILURE;
    };
    let seed: u64 = arg(&args, "--seed", 42);
    let dim: usize = arg(&args, "--dim", 32);
    let epochs: usize = arg(&args, "--epochs", 15);
    let cold_fraction: f64 = arg(&args, "--cold-fraction", 0.1);
    let threads: usize =
        arg(&args, "--threads", std::thread::available_parallelism().map_or(4, |n| n.get()));
    let fold_steps: usize = arg(&args, "--fold-steps", 60);
    let fold_negatives: usize = arg(&args, "--fold-negatives", 8);
    let fold_lr: f64 = arg(&args, "--fold-lr", 0.1);
    let compact_epochs: usize = arg(&args, "--compact-epochs", 16);
    let compact_lr: f64 = arg(&args, "--compact-lr", 0.02);
    let rehearsal: f64 = arg(&args, "--rehearsal", 1.0);
    let out = PathBuf::from(arg(&args, "--out", "results/replay.txt".to_string()));

    let spec = DatasetSpec::ciao(scale);
    let sc = ReplayScenario::build(&spec, seed, cold_fraction);
    let revealed: usize = sc.cold.iter().map(|c| c.fold_in.len()).sum();
    let holdout: usize = sc.cold.iter().map(|c| c.test.len()).sum();
    eprintln!(
        "replay_bench: ciao/{scale_raw} seed {seed}, {} warm users + {} cold, {} items; \
         {revealed} revealed / {holdout} held-out cold events (d={dim}, {epochs} epochs)",
        sc.n_warm_users(),
        sc.cold.len(),
        sc.warm.n_items(),
    );

    let cfg = LogiRecConfig {
        dim,
        epochs,
        eval_every: 0,
        train_threads: threads,
        eval_threads: threads,
        seed,
        ..LogiRecConfig::default()
    };

    // Frozen model: warm past only.
    let t0 = Instant::now();
    let (mut warm_model, _) = train(cfg.clone(), &sc.warm);
    warm_model.propagate(&sc.warm.train);
    let warm_s = t0.elapsed().as_secs_f64();
    eprintln!("warm training: {warm_s:.1}s");

    // Stream the cold future, one signup at a time, timing each fold-in.
    let fold_opts = FoldInOptions {
        steps: fold_steps,
        negatives: fold_negatives,
        lr: fold_lr,
        ..FoldInOptions::for_config(&cfg)
    };
    let mut fold_us: Vec<u64> = Vec::with_capacity(sc.cold.len());
    let (mut loss_initial, mut loss_final) = (0.0f64, 0.0f64);
    for c in &sc.cold {
        let opts = FoldInOptions { seed: fold_opts.seed ^ c.id as u64, ..fold_opts.clone() };
        let t = Instant::now();
        let report = fold_in_user(&mut warm_model, &c.fold_in, &opts).unwrap_or_else(|e| {
            eprintln!("fold-in of cold user {} failed: {e}", c.id);
            std::process::exit(1);
        });
        fold_us.push(t.elapsed().as_micros() as u64);
        loss_initial += report.initial_loss;
        loss_final += report.final_loss;
        assert_eq!(report.id, c.id, "cold ids must be folded in id order");
    }
    let n_cold = sc.cold.len().max(1) as f64;
    eprintln!(
        "fold-in objective: mean initial {:.4} -> final {:.4} over {} users",
        loss_initial / n_cold,
        loss_final / n_cold,
        sc.cold.len()
    );
    let folded = evaluate(&warm_model, &sc.replay, Split::Test, &[10], threads);

    // One compaction pass over the same events refines the streamed rows
    // (and their neighborhoods) with a few incremental epochs.
    let mut log = EventLog::new();
    for (u, v, t) in sc.stream_events() {
        log.append(u, v, t);
    }
    let copts = CompactionOptions {
        epochs: compact_epochs,
        lr: compact_lr,
        rehearsal,
        ..CompactionOptions::for_config(&cfg)
    };
    let t0 = Instant::now();
    let (_grown, creport) =
        compact(&mut warm_model, &sc.warm.train, &mut log, &copts).unwrap_or_else(|e| {
            eprintln!("compaction failed: {e}");
            std::process::exit(1);
        });
    let compact_s = t0.elapsed().as_secs_f64();
    if creport.rolled_back {
        eprintln!("compaction rolled back: {:?}", creport.rollback_reason);
    }
    let compacted = evaluate(&warm_model, &sc.replay, Split::Test, &[10], threads);

    // The matched baseline: full retrain on warm + revealed events.
    let t0 = Instant::now();
    let (mut retrain_model, _) = train(cfg.clone(), &sc.replay);
    retrain_model.propagate(&sc.replay.train);
    let retrain_s = t0.elapsed().as_secs_f64();
    eprintln!("full retrain: {retrain_s:.1}s");
    let retrain = evaluate(&retrain_model, &sc.replay, Split::Test, &[10], threads);

    let report = render(
        &scale_raw, seed, dim, epochs, &sc, &fold_us, &folded, &compacted, &retrain, &creport,
        warm_s, compact_s, retrain_s,
    );
    print!("{report}");
    if let Some(dir) = out.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&out, &report) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out.display());

    // The acceptance bound: compacted streaming within 10 % relative on
    // both ranking metrics.
    let hr_deficit = relative_deficit(compacted.recall_at(10), retrain.recall_at(10));
    let ndcg_deficit = relative_deficit(compacted.ndcg_at(10), retrain.ndcg_at(10));
    if hr_deficit > 0.10 || ndcg_deficit > 0.10 {
        eprintln!(
            "FAIL: streamed deficit HR@10 {:.1}% / NDCG@10 {:.1}% exceeds the 10% \
             acceptance bound",
            100.0 * hr_deficit,
            100.0 * ndcg_deficit
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `(baseline - value) / baseline`, clamped below at 0 (a streamed win is
/// a zero deficit).
fn relative_deficit(value: f64, baseline: f64) -> f64 {
    if baseline <= 0.0 {
        return 0.0;
    }
    ((baseline - value) / baseline).max(0.0)
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

#[allow(clippy::too_many_arguments)]
fn render(
    scale: &str,
    seed: u64,
    dim: usize,
    epochs: usize,
    sc: &ReplayScenario,
    fold_us: &[u64],
    folded: &EvalResult,
    compacted: &EvalResult,
    retrain: &EvalResult,
    creport: &logirec_suite::core::stream::CompactionReport,
    warm_s: f64,
    compact_s: f64,
    retrain_s: f64,
) -> String {
    let title = format!(
        "Temporal replay: streaming cold-start vs full retrain (ciao, scale = {scale})"
    );
    let mut s = format!("{title}\n{}\n", "=".repeat(title.len()));
    s += &format!(
        "seed {seed}, d={dim}, {epochs} epochs; {} warm users, {} cold signups, {} items\n\
         cold protocol: first 80% of each cold user's events streamed, last 20% held out\n\n",
        sc.n_warm_users(),
        sc.cold.len(),
        sc.warm.n_items(),
    );
    s += &format!("{:<34}{:>9}{:>10}{:>12}\n", "Model", "HR@10", "NDCG@10", "rel. HR");
    s += &format!("{}\n", "-".repeat(65));
    let row = |s: &mut String, name: &str, e: &EvalResult| {
        let deficit = relative_deficit(e.recall_at(10), retrain.recall_at(10));
        *s += &format!(
            "{name:<34}{:>9.4}{:>10.4}{:>11.1}%\n",
            e.recall_at(10),
            e.ndcg_at(10),
            -100.0 * deficit
        );
    };
    s += &format!(
        "{:<34}{:>9.4}{:>10.4}{:>12}\n",
        "full retrain (baseline)",
        retrain.recall_at(10),
        retrain.ndcg_at(10),
        "--"
    );
    row(&mut s, "streamed fold-in", folded);
    row(&mut s, "streamed fold-in + compaction", compacted);
    let hr_deficit = relative_deficit(compacted.recall_at(10), retrain.recall_at(10));
    let ndcg_deficit = relative_deficit(compacted.ndcg_at(10), retrain.ndcg_at(10));
    s += &format!(
        "\nacceptance: compacted stream within 10% relative HR@10/NDCG@10 of retrain: {} \
         (HR -{:.1}%, NDCG -{:.1}%)\n",
        if hr_deficit <= 0.10 && ndcg_deficit <= 0.10 { "PASS" } else { "FAIL" },
        100.0 * hr_deficit,
        100.0 * ndcg_deficit
    );

    let mut sorted = fold_us.to_vec();
    sorted.sort_unstable();
    let mean = sorted.iter().sum::<u64>() as f64 / sorted.len().max(1) as f64;
    s += &format!(
        "\nfold-in latency per cold user: mean {:.0}us  p50 {}us  p95 {}us  max {}us  \
         ({} users)\n",
        mean,
        quantile(&sorted, 0.5),
        quantile(&sorted, 0.95),
        sorted.last().copied().unwrap_or(0),
        sorted.len(),
    );
    s += &format!(
        "compaction: {} events folded, {} incremental epochs, final loss {:.4}, {:.1}s\n",
        creport.events_folded, creport.epochs_run, creport.final_loss, compact_s,
    );
    s += &format!(
        "wall time: warm train {warm_s:.1}s, compaction {compact_s:.1}s, full retrain \
         {retrain_s:.1}s\n"
    );
    s
}
