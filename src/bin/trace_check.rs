//! `trace_check` — validates a JSONL telemetry trace emitted by
//! `logirec --trace-json` or the bench harness.
//!
//! ```text
//! trace_check out.jsonl
//! trace_check out.jsonl --require-kinds train,epoch,batch,loss,mining,checkpoint,eval
//! trace_check out.jsonl --min-spans 10
//! ```
//!
//! Checks, in order: every line parses as a flat JSON event with `t_us` /
//! `kind` / `name`; span ids are unique; every parent was opened before its
//! child and the child's interval is contained in the parent's; every span
//! name listed in `--require-kinds` occurs at least once. Exits non-zero on
//! the first violation — `scripts/tier1.sh` uses this as the telemetry
//! smoke gate.

use std::path::Path;
use std::process::ExitCode;

use logirec_suite::obs::validate_trace_file;

const USAGE: &str =
    "usage: trace_check FILE [--require-kinds a,b,c] [--min-spans N] [--min-lines N]";

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_check: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let mut file = None;
    let mut require_kinds: Vec<String> = Vec::new();
    let mut min_spans = 0usize;
    let mut min_lines = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--require-kinds" => {
                let v = it.next().ok_or("--require-kinds needs a comma-separated list")?;
                require_kinds =
                    v.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect();
            }
            "--min-spans" => {
                min_spans = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--min-spans needs an integer")?;
            }
            "--min-lines" => {
                min_lines = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--min-lines needs an integer")?;
            }
            "--help" | "-h" => return Ok(USAGE.to_string()),
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}\n{USAGE}")),
        }
    }
    let file = file.ok_or_else(|| format!("missing trace file\n{USAGE}"))?;

    let stats = validate_trace_file(Path::new(&file))?;
    if stats.lines < min_lines {
        return Err(format!("only {} events (wanted ≥ {min_lines})", stats.lines));
    }
    if stats.spans < min_spans {
        return Err(format!("only {} spans (wanted ≥ {min_spans})", stats.spans));
    }
    let missing: Vec<&str> = require_kinds
        .iter()
        .filter(|k| stats.span_count(k) == 0)
        .map(String::as_str)
        .collect();
    if !missing.is_empty() {
        let seen: Vec<&str> = stats.span_kinds.keys().map(String::as_str).collect();
        return Err(format!(
            "missing required span kinds: {} (trace has: {})",
            missing.join(", "),
            seen.join(", ")
        ));
    }

    let kinds: Vec<String> = stats
        .span_kinds
        .iter()
        .map(|(k, n)| format!("{k}×{n}"))
        .collect();
    Ok(format!(
        "{file}: OK — {} events, {} spans, well-nested ({})",
        stats.lines,
        stats.spans,
        kinds.join(", ")
    ))
}
