//! `trace_profile` — aggregates a JSONL telemetry trace into a per-span
//! hot-path report: call counts, total time, self time (duration minus
//! direct children, so nesting never double-counts), and the fraction of
//! the run's wall clock attributed to named spans.
//!
//! ```text
//! trace_profile out.jsonl
//! trace_profile out.jsonl --top 5
//! trace_profile out.jsonl --min-coverage 0.9
//! ```
//!
//! `--min-coverage F` turns the report into a gate: exits non-zero when
//! the attributed fraction falls below `F` — a healthy instrumented run
//! attributes ≥ 90% of its wall time to spans, and a drop means new
//! un-instrumented code on the hot path.

use std::path::Path;
use std::process::ExitCode;

use logirec_suite::obs::profile::profile_trace_file;

const USAGE: &str = "usage: trace_profile FILE [--top N] [--min-coverage F]";

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_profile: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let mut file = None;
    let mut top = 10usize;
    let mut min_coverage: Option<f64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => {
                top = it.next().and_then(|v| v.parse().ok()).ok_or("--top needs an integer")?;
            }
            "--min-coverage" => {
                min_coverage = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--min-coverage needs a fraction in [0, 1]")?,
                );
            }
            "--help" | "-h" => return Ok(format!("{USAGE}\n")),
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}\n{USAGE}")),
        }
    }
    let file = file.ok_or_else(|| format!("missing trace file\n{USAGE}"))?;

    let profile = profile_trace_file(Path::new(&file))?;
    let report = profile.render(top);
    if let Some(floor) = min_coverage {
        if profile.coverage() < floor {
            return Err(format!(
                "{report}coverage {:.1}% below the required {:.1}% — un-instrumented \
                 time on the hot path",
                100.0 * profile.coverage(),
                100.0 * floor
            ));
        }
    }
    Ok(report)
}
